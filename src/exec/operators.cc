#include "exec/operators.h"

#include <algorithm>

#include "common/macros.h"
#include "expr/analysis.h"

namespace zstream {

// ---------------------------------------------------------------------
// OperatorNode
// ---------------------------------------------------------------------

OperatorNode::OperatorNode(const Pattern* pattern, PhysOp op,
                           MemoryTracker* tracker, bool leaf_buffer)
    : pattern_(pattern),
      op_(op),
      output_(tracker, leaf_buffer, pattern->num_classes()),
      group_class_(pattern->KleeneClass()),
      window_(pattern->window),
      scratch_(static_cast<size_t>(pattern->num_classes())),
      emit_slots_(static_cast<size_t>(pattern->num_classes())) {}

void OperatorNode::AttachPredicate(ExprPtr pred, int pred_idx) {
  AttachedPred p;
  const std::set<int> classes = ReferencedClasses(pred);
  p.classes.assign(classes.begin(), classes.end());
  p.has_aggregate = ContainsAggregate(pred);
  // AND-of-comparison shapes take the flat compiled path; everything
  // else (OR, NOT, arithmetic, aggregates) keeps the tree walker.
  p.compiled = CompiledPredicate::Compile(pred);
  p.expr = std::move(pred);
  p.pred_idx = pred_idx;
  preds_.push_back(std::move(p));
}

ZS_HOT bool OperatorNode::EvalOnePred(const AttachedPred& p,
                                      const EvalInput& in) {
  // Vacuous pass when a referenced slot is unbound (disjunction
  // branches). The Kleene class binds through the group instead.
  for (int c : p.classes) {
    const bool bound = in.slots[c] != nullptr ||
                       (c == group_class_ && in.group != nullptr);
    if (!bound) return true;
  }
  const bool pass = p.compiled.has_value() ? p.compiled->Eval(in)
                                           : p.expr->EvalPredicate(in);
  if (stats_ != nullptr && p.pred_idx >= 0) {
    stats_->OnPredicateEval(p.pred_idx, pass);
  }
  return pass;
}

ZS_HOT bool OperatorNode::EvalPreds(const EvalInput& in) {
  for (const AttachedPred& p : preds_) {
    if (!EvalOnePred(p, in)) return false;
  }
  return true;
}

ZS_HOT EvalInput OperatorNode::MergedView(const RecordRef& a,
                                          const RecordRef& b) {
  // Non-owning aliases: evaluating a candidate pair touches no
  // refcounts; rejected pairs cost nothing beyond the predicate itself.
  const int n = a.num_slots;
  for (int i = 0; i < n; ++i) {
    const Event* raw =
        a.slots[i] != nullptr ? a.slots[i].get() : b.slots[i].get();
    scratch_[static_cast<size_t>(i)] = EventPtr(EventPtr(), raw);
  }
  EvalInput in;
  in.slots = scratch_.data();
  in.num_slots = n;
  in.group = a.has_group() ? a.group() : b.group();
  in.group_class = group_class_;
  return in;
}

ZS_HOT void OperatorNode::EmitMerged(const RecordRef& a, const RecordRef& b,
                                     Timestamp start_ts, Timestamp end_ts) {
  if (sink_ != nullptr) {
    if (!sink_->NeedsPayload()) {
      sink_->OnMatch(start_ts, end_ts, nullptr, 0, nullptr);
      return;
    }
    // The sink copies what it keeps, so it must see owning pointers:
    // stage the union in the owning scratch vector (the inputs' chunk
    // slots are owning; the MergedView aliases are not).
    const int n = a.num_slots;
    for (int i = 0; i < n; ++i) {
      emit_slots_[static_cast<size_t>(i)] =
          a.slots[i] != nullptr ? a.slots[i] : b.slots[i];
    }
    const EventGroupPtr* g =
        (a.group_sp != nullptr && *a.group_sp != nullptr) ? a.group_sp
                                                          : b.group_sp;
    sink_->OnMatch(start_ts, end_ts, emit_slots_.data(), n, g);
    return;
  }
  output_.AppendMerged(a, b, start_ts, end_ts);
}

ZS_HOT void OperatorNode::EmitRef(const RecordRef& r) {
  if (sink_ != nullptr) {
    if (!sink_->NeedsPayload()) {
      sink_->OnMatch(r.start_ts, r.end_ts, nullptr, 0, nullptr);
    } else {
      // r's slots live in chunk storage (owning) and stay valid for the
      // duration of the call; the sink copies from them directly.
      sink_->OnMatch(r.start_ts, r.end_ts, r.slots, r.num_slots, r.group_sp);
    }
    return;
  }
  output_.AppendRef(r);
}

// ---------------------------------------------------------------------
// LeafNode
// ---------------------------------------------------------------------

LeafNode::LeafNode(const Pattern* pattern, int class_idx,
                   MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kLeaf, tracker, /*leaf_buffer=*/true),
      class_idx_(class_idx),
      event_class_(&pattern->classes[static_cast<size_t>(class_idx)]),
      probe_slots_(static_cast<size_t>(pattern->num_classes())) {
  set_covered({class_idx});
  batchable_ = event_class_->neg_branches.empty();
  for (const ExprPtr& pred : event_class_->leaf_predicates) {
    LeafPred lp;
    lp.expr = pred.get();
    lp.compiled = CompiledPredicate::Compile(pred);
    if (lp.compiled.has_value() && !lp.compiled->SingleClass(class_idx_)) {
      lp.compiled.reset();
    }
    if (!lp.compiled.has_value()) batchable_ = false;
    leaf_preds_.push_back(std::move(lp));
  }
}

ZS_HOT bool LeafNode::Admit(const EventPtr& event) {
  // Probe with a non-owning alias in the reused slot vector: most
  // events are rejected by the pushed-down predicates, and rejecting
  // must not pay for materialization (refcount up/down on the event).
  probe_slots_[static_cast<size_t>(class_idx_)] =
      EventPtr(EventPtr(), event.get());
  EvalInput in;
  in.slots = probe_slots_.data();
  in.num_slots = static_cast<int>(probe_slots_.size());
  in.group = nullptr;
  in.group_class = group_class_;
  bool admitted = true;
  for (const LeafPred& lp : leaf_preds_) {
    const bool pass = lp.compiled.has_value() ? lp.compiled->Eval(in)
                                              : lp.expr->EvalPredicate(in);
    if (!pass) {
      admitted = false;
      break;
    }
  }
  if (admitted && !event_class_->neg_branches.empty()) {
    bool any = false;
    for (const NegBranch& branch : event_class_->neg_branches) {
      bool all = true;
      for (const ExprPtr& pred : branch.predicates) {
        if (!pred->EvalPredicate(in)) {
          all = false;
          break;
        }
      }
      if (all) {
        any = true;
        break;
      }
    }
    if (!any) admitted = false;
  }
  probe_slots_[static_cast<size_t>(class_idx_)] = nullptr;
  if (!admitted) return false;
  Accept(event);
  return true;
}

ZS_HOT void LeafNode::Accept(const EventPtr& event) {
  output_.AppendEvent(class_idx_, event);
#ifndef ZSTREAM_OBS_STRIPPED
  ++records_emitted_;
#endif
  if (stats_ != nullptr) stats_->OnClassAdmit(class_idx_);
}

ZS_HOT bool LeafNode::Offer(const EventPtr& event) {
#ifndef ZSTREAM_OBS_STRIPPED
  ++offered_;
#endif
  return Admit(event);
}

ZS_HOT void LeafNode::OfferBatch(const EventPtr* events, int n) {
#ifndef ZSTREAM_OBS_STRIPPED
  offered_ += static_cast<uint64_t>(n);
#endif
  if (!batchable_) {
    for (int i = 0; i < n; ++i) Admit(events[i]);
    return;
  }
  // Term-major admission: each compiled predicate sweeps the whole
  // batch narrowing the selection mask, then survivors append.
  mask_.assign(static_cast<size_t>(n), 1);  // zs-hotpath-allow(amortized: capacity reused across batches)
  for (const LeafPred& lp : leaf_preds_) {
    lp.compiled->FilterBatch(events, n, mask_.data());
  }
  for (int i = 0; i < n; ++i) {
    if (mask_[static_cast<size_t>(i)] != 0) Accept(events[i]);
  }
}

// ---------------------------------------------------------------------
// SeqNode (Algorithm 1)
// ---------------------------------------------------------------------

SeqNode::SeqNode(const Pattern* pattern, OperatorNode* left,
                 OperatorNode* right, MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kSeq, tracker),
      left_(left),
      right_(right) {
  children_ = {left, right};
}

void SeqNode::SetHashEquality(const EqualityJoin& eq) {
  hash_eq_ = eq;
  left_->output()->EnableHashIndex(eq.left_class, eq.left_field);
}

void SeqNode::AddNegGuard(int neg_class, bool neg_bound_on_right) {
  guards_.push_back(NegGuard{neg_class, neg_bound_on_right});
}

ZS_HOT bool SeqNode::PassesGuards(const RecordRef& l,
                                  const RecordRef& r) const {
  for (const NegGuard& g : guards_) {
    const int nc = g.neg_class;
    if (g.neg_bound_on_right) {
      // Pattern ...A;!B;C...: right side carries (b, c); survival
      // requires a.ts >= b.ts (Figure 4's T1.ts >= T2.ts).
      const EventPtr& b = r.slots[nc];
      if (b == nullptr) continue;
      const EventPtr& a = l.slots[nc - 1];
      if (a != nullptr && a->timestamp() < b->timestamp()) return false;
    } else {
      // Left side carries (a, b) with b the first negator after a;
      // survival requires b.ts >= c.ts.
      const EventPtr& b = l.slots[nc];
      if (b == nullptr) continue;
      const EventPtr& c = r.slots[nc + 1];
      if (c != nullptr && b->timestamp() < c->timestamp()) return false;
    }
  }
  return true;
}

ZS_HOT void SeqNode::TryCombine(const RecordRef& l, const RecordRef& r) {
  ++pairs_tried_;
  if (!PassesGuards(l, r)) return;
  // Evaluate before materializing: a rejected pair allocates nothing.
  if (!preds_.empty() && !EvalPreds(MergedView(l, r))) return;
  EmitMerged(l, r, std::min(l.start_ts, r.start_ts),
             std::max(l.end_ts, r.end_ts));
  ++records_emitted_;
}

ZS_HOT void SeqNode::Assemble(Timestamp eat) {
  Buffer& lbuf = *left_->output();
  Buffer& rbuf = *right_->output();
  lbuf.PurgeBefore(eat);

  for (RecordId rid = rbuf.watermark(); rid < rbuf.end_id(); ++rid) {
    const RecordRef rr = rbuf.Get(rid);
    if (rr.start_ts < eat) continue;
    // Window bound: combined span rr.end - lr.start must fit.
    const Timestamp min_start = rr.end_ts - window_;

    // The hash path requires the equality's class bound on this record;
    // a record from a disjunction branch that leaves it unbound must
    // take the scan path instead (the predicate vacuous-passes there).
    const EventPtr* hash_key_event =
        hash_eq_.has_value() && lbuf.has_hash_index()
            ? &rr.slots[hash_eq_->right_class]
            : nullptr;
    if (hash_key_event != nullptr && *hash_key_event != nullptr) {
      const Value key = (*hash_key_event)->value(hash_eq_->right_field);
      for (uint64_t lid : lbuf.hash_index()->Probe(key)) {
        if (lid < lbuf.base_id()) continue;
        const RecordRef lr = lbuf.Get(lid);
        if (lr.end_ts >= rr.start_ts) break;
        if (lr.start_ts < eat || lr.start_ts < min_start) continue;
        TryCombine(lr, rr);
      }
    } else {
      for (RecordId lid = lbuf.base_id(); lid < lbuf.end_id(); ++lid) {
        const RecordRef lr = lbuf.Get(lid);
        if (lr.end_ts >= rr.start_ts) break;
        if (lr.start_ts < eat || lr.start_ts < min_start) continue;
        TryCombine(lr, rr);
      }
    }
  }

  rbuf.SetWatermark(rbuf.end_id());
  if (right_->is_leaf()) {
    rbuf.PurgeBefore(eat);
  } else {
    rbuf.Clear();  // Algorithm 1, step 7
  }
}

// ---------------------------------------------------------------------
// NSeqNode (Algorithm 2)
// ---------------------------------------------------------------------

NSeqNode::NSeqNode(const Pattern* pattern, LeafNode* neg, OperatorNode* other,
                   bool neg_left, MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kNSeq, tracker),
      neg_(neg),
      other_(other),
      neg_left_(neg_left) {
  children_ = neg_left ? std::vector<OperatorNode*>{neg, other}
                       : std::vector<OperatorNode*>{other, neg};
}

ZS_HOT void NSeqNode::Assemble(Timestamp eat) {
  Buffer& nbuf = *neg_->output();
  Buffer& obuf = *other_->output();
  nbuf.PurgeBefore(eat);

  RecordId consumed_to = obuf.end_id();
  for (RecordId oid = obuf.watermark(); oid < obuf.end_id(); ++oid) {
    const RecordRef orec = obuf.Get(oid);
    if (!neg_left_ && orec.end_ts + window_ >= horizon_) {
      // A negator that matters for this record could still arrive
      // (Section 4.4.2's "B;!C" direction); hold it for a later round.
      consumed_to = oid;
      break;
    }
    if (orec.start_ts < eat) continue;

    bool emitted = false;
    if (neg_left_) {
      // Find the latest negator strictly before orec, newest first.
      for (RecordId nid = nbuf.end_id(); nid-- > nbuf.base_id();) {
        const RecordRef nr = nbuf.Get(nid);
        ++pairs_tried_;
        if (nr.end_ts >= orec.start_ts) continue;
        if (nr.start_ts < eat) break;  // leaf: older ids are even earlier
        if (!preds_.empty() && !EvalPreds(MergedView(nr, orec))) continue;
        EmitMerged(nr, orec, orec.start_ts, orec.end_ts);
        emitted = true;
        break;
      }
    } else {
      // Find the first negator strictly after orec, oldest first.
      for (RecordId nid = nbuf.base_id(); nid < nbuf.end_id(); ++nid) {
        const RecordRef nr = nbuf.Get(nid);
        ++pairs_tried_;
        if (nr.start_ts <= orec.end_ts) continue;
        if (!preds_.empty() && !EvalPreds(MergedView(nr, orec))) continue;
        EmitMerged(nr, orec, orec.start_ts, orec.end_ts);
        emitted = true;
        break;
      }
    }
    if (!emitted) {
      EmitRef(orec);  // (NULL, Rr)
    }
    ++records_emitted_;
  }

  obuf.SetWatermark(consumed_to);
  if (other_->is_leaf() || !neg_left_) {
    // Leaves persist; the neg-right side may hold unconsumed records.
    obuf.PurgeBefore(eat);
  } else {
    obuf.Clear();
  }
}

// ---------------------------------------------------------------------
// ConjNode (Algorithm 3)
// ---------------------------------------------------------------------

ConjNode::ConjNode(const Pattern* pattern, OperatorNode* left,
                   OperatorNode* right, MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kConj, tracker),
      left_(left),
      right_(right) {
  children_ = {left, right};
}

void ConjNode::SetHashEquality(const EqualityJoin& eq) {
  hash_eq_ = eq;
  left_->output()->EnableHashIndex(eq.left_class, eq.left_field);
  right_->output()->EnableHashIndex(eq.right_class, eq.right_field);
}

ZS_HOT void ConjNode::CombineWithEarlier(const RecordRef& pivot,
                                         Buffer& partner, RecordId limit,
                                         bool pivot_is_left, Timestamp eat) {
  const auto try_one = [&](const RecordRef& br) {
    ++pairs_tried_;
    if (br.start_ts < eat) return;
    const Timestamp start = std::min(pivot.start_ts, br.start_ts);
    const Timestamp end = std::max(pivot.end_ts, br.end_ts);
    if (end - start > window_) return;
    if (!preds_.empty()) {
      const EvalInput view = pivot_is_left ? MergedView(pivot, br)
                                           : MergedView(br, pivot);
      if (!EvalPreds(view)) return;
    }
    if (pivot_is_left) {
      EmitMerged(pivot, br, start, end);
    } else {
      EmitMerged(br, pivot, start, end);
    }
    ++records_emitted_;
  };

  if (hash_eq_.has_value() && partner.has_hash_index()) {
    const HashIndex* idx = partner.hash_index();
    // The pivot's key field is the opposite side of the equality.
    const int key_class =
        pivot_is_left ? hash_eq_->left_class : hash_eq_->right_class;
    const int key_field =
        pivot_is_left ? hash_eq_->left_field : hash_eq_->right_field;
    const EventPtr& key_event = pivot.slots[key_class];
    // A pivot that leaves the key class unbound (disjunction branch)
    // falls through to the scan: the predicate vacuous-passes.
    if (key_event != nullptr) {
      const Value key = key_event->value(key_field);
      for (uint64_t id : idx->Probe(key)) {
        if (id < partner.base_id()) continue;
        if (id >= limit) break;
        try_one(partner.Get(id));
      }
      return;
    }
  }
  for (RecordId id = partner.base_id(); id < limit; ++id) {
    try_one(partner.Get(id));
  }
}

ZS_HOT void ConjNode::Assemble(Timestamp eat) {
  Buffer& lbuf = *left_->output();
  Buffer& rbuf = *right_->output();
  lbuf.PurgeBefore(eat);
  rbuf.PurgeBefore(eat);

  RecordId li = lbuf.watermark();
  RecordId ri = rbuf.watermark();
  while (li < lbuf.end_id() || ri < rbuf.end_id()) {
    bool pick_right;
    if (li >= lbuf.end_id()) {
      pick_right = true;
    } else if (ri >= rbuf.end_id()) {
      pick_right = false;
    } else {
      pick_right = lbuf.Get(li).end_ts > rbuf.Get(ri).end_ts;
    }
    if (pick_right) {
      const RecordRef pivot = rbuf.Get(ri);
      ++ri;
      if (pivot.start_ts < eat) continue;
      CombineWithEarlier(pivot, lbuf, li, /*pivot_is_left=*/false, eat);
    } else {
      const RecordRef pivot = lbuf.Get(li);
      ++li;
      if (pivot.start_ts < eat) continue;
      CombineWithEarlier(pivot, rbuf, ri, /*pivot_is_left=*/true, eat);
    }
  }
  lbuf.SetWatermark(li);
  rbuf.SetWatermark(ri);
}

// ---------------------------------------------------------------------
// DisjNode
// ---------------------------------------------------------------------

DisjNode::DisjNode(const Pattern* pattern, OperatorNode* left,
                   OperatorNode* right, MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kDisj, tracker),
      left_(left),
      right_(right) {
  children_ = {left, right};
}

ZS_HOT void DisjNode::Assemble(Timestamp eat) {
  Buffer& lbuf = *left_->output();
  Buffer& rbuf = *right_->output();

  RecordId li = lbuf.watermark();
  RecordId ri = rbuf.watermark();
  while (li < lbuf.end_id() || ri < rbuf.end_id()) {
    bool pick_right;
    if (li >= lbuf.end_id()) {
      pick_right = true;
    } else if (ri >= rbuf.end_id()) {
      pick_right = false;
    } else {
      pick_right = rbuf.Get(ri).end_ts <= lbuf.Get(li).end_ts;
    }
    const RecordRef rec = pick_right ? rbuf.Get(ri) : lbuf.Get(li);
    (pick_right ? ri : li) += 1;
    ++pairs_tried_;
    if (rec.start_ts < eat) continue;
    if (!EvalPreds(rec.ToEvalInput(group_class_))) continue;
    EmitRef(rec);
    ++records_emitted_;
  }
  lbuf.SetWatermark(li);
  rbuf.SetWatermark(ri);
  // Both inputs are fully consumed merges; internal ones can be cleared.
  if (!left_->is_leaf()) lbuf.Clear();
  if (!right_->is_leaf()) rbuf.Clear();
}

// ---------------------------------------------------------------------
// NegFilterNode
// ---------------------------------------------------------------------

NegFilterNode::NegFilterNode(const Pattern* pattern, OperatorNode* input,
                             LeafNode* neg_leaf, int neg_class,
                             MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kNegFilter, tracker),
      input_(input),
      neg_leaf_(neg_leaf),
      neg_class_(neg_class) {
  children_ = {input, neg_leaf};
}

ZS_HOT void NegFilterNode::Assemble(Timestamp eat) {
  Buffer& in = *input_->output();
  Buffer& nbuf = *neg_leaf_->output();
  nbuf.PurgeBefore(eat);

  const int nc = neg_class_;
  for (RecordId id = in.watermark(); id < in.end_id(); ++id) {
    const RecordRef rec = in.Get(id);
    if (rec.start_ts < eat) continue;
    // The negation position is enclosed by classes nc-1 and nc+1. A
    // record that binds neither enclosing class (the negation lives in
    // a disjunction branch this record did not take) is outside the
    // negation's scope and passes through untouched.
    const EventPtr& a = rec.slots[nc - 1];
    const EventPtr& c = rec.slots[nc + 1];
    if (a == nullptr && c == nullptr) {
      EmitRef(rec);
      ++records_emitted_;
      continue;
    }
    const Timestamp lo = a != nullptr ? a->timestamp() : rec.start_ts;
    const Timestamp hi = c != nullptr ? c->timestamp() : rec.end_ts;

    bool negated = false;
    for (RecordId bid = nbuf.end_id(); bid-- > nbuf.base_id();) {
      const RecordRef br = nbuf.Get(bid);
      ++pairs_tried_;
      if (br.end_ts >= hi) continue;
      if (br.end_ts <= lo) break;  // leaf: sorted, all older from here
      if (preds_.empty() || EvalPreds(MergedView(br, rec))) {
        negated = true;
        break;
      }
    }
    if (!negated) {
      EmitRef(rec);
      ++records_emitted_;
    }
  }
  in.SetWatermark(in.end_id());
  if (!input_->is_leaf()) in.Clear();
}

}  // namespace zstream
