#include "exec/engine.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/macros.h"
#include "expr/analysis.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/plan_verifier.h"

namespace zstream {

std::string Match::ToString() const {
  std::ostringstream os;
  os << "match[" << span.start << "," << span.end << "](";
  bool first = true;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == nullptr) continue;
    if (!first) os << "; ";
    first = false;
    os << slots[i]->ToString();
  }
  if (group != nullptr) {
    os << "; group size=" << group->size();
  }
  os << ")";
  return os.str();
}

std::vector<Value> ProjectMatch(const Pattern& pattern, const Match& match) {
  EvalInput in;
  in.slots = match.slots.data();
  in.num_slots = static_cast<int>(match.slots.size());
  in.group = match.group == nullptr ? nullptr : match.group.get();
  in.group_class = pattern.KleeneClass();

  std::vector<Value> out;
  out.reserve(pattern.return_items.size());
  for (const ReturnItem& item : pattern.return_items) {
    if (item.expr != nullptr) {
      out.push_back(item.expr->Eval(in));
    } else {
      const EventPtr& e = match.slots[static_cast<size_t>(item.class_idx)];
      out.push_back(e == nullptr ? Value::Null() : Value(e->ToString()));
    }
  }
  return out;
}

Engine::Engine(PatternPtr pattern, const EngineOptions& options,
               MemoryTracker* tracker)
    : pattern_(std::move(pattern)), options_(options), tracker_(tracker) {
  if (tracker_ == nullptr) {
    owned_tracker_ = std::make_unique<MemoryTracker>();
    tracker_ = owned_tracker_.get();
  }
  if (options_.reorder_slack > 0) {
    reorder_ = std::make_unique<ReorderStage>(
        options_.reorder_slack,
        [this](const EventPtr& e) { PushOrdered(e); });
  }
  // Hash-equality routing must avoid classes that may be unbound in a
  // record (see BuildNode).
  optional_class_ = pattern_->OptionalClasses();
#ifndef ZSTREAM_OBS_STRIPPED
  profiling_ = options_.profile || options_.slow_event_ns > 0;
#endif
}

Engine::~Engine() = default;

Result<std::unique_ptr<Engine>> Engine::Create(PatternPtr pattern,
                                               const PhysicalPlan& plan,
                                               const EngineOptions& options,
                                               MemoryTracker* tracker) {
  ZS_RETURN_IF_ERROR(pattern->Validate());
  ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern, plan));
  auto engine =
      std::unique_ptr<Engine>(new Engine(std::move(pattern), options, tracker));
  ZS_RETURN_IF_ERROR(engine->Build(plan, /*initial=*/true,
                                   /*pre_verified=*/true));
  return engine;
}

Result<std::unique_ptr<Engine>> Engine::CreateTrusted(
    PatternPtr pattern, const PhysicalPlan& plan, const EngineOptions& options,
    MemoryTracker* tracker) {
  auto engine =
      std::unique_ptr<Engine>(new Engine(std::move(pattern), options, tracker));
  ZS_RETURN_IF_ERROR(engine->Build(plan, /*initial=*/true,
                                   /*pre_verified=*/true));
  return engine;
}

Status Engine::Build(const PhysicalPlan& plan, bool initial,
                     bool pre_verified) {
  // Full invariant pass, not just the plan-layer ValidatePlan: every
  // plan reaching an engine (initial build or a SwitchPlan from the
  // adaptive path) satisfies the verifier or is refused here — except
  // when the caller proved this exact pattern/plan pair already
  // (Create's own pre-check, or PartitionedEngine verifying once for
  // hundreds of partitions).
  if (!pre_verified) {
    ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern_, plan));
  }
  const int n = pattern_->num_classes();

  if (initial) {
    const bool want_stats = options_.adaptive || options_.collect_stats;
    if (want_stats) {
      // Bucket the window so rate changes show up within a few windows.
      const Duration bucket =
          std::max<Duration>(pattern_->window, 1);
      windowed_stats_ = std::make_unique<WindowedClassStats>(
          n, static_cast<int>(pattern_->multi_predicates.size()), bucket);
    }
    leaves_.clear();
    for (int c = 0; c < n; ++c) {
      leaves_.push_back(std::make_unique<LeafNode>(pattern_.get(), c,
                                                   tracker_));
      leaves_.back()->set_runtime_stats(windowed_stats_.get());
    }
    if (options_.adaptive) {
      adaptive_ = std::make_unique<AdaptiveController>(
          pattern_, options_.adaptive_options);
    }
  }

  internal_nodes_.clear();
  assembly_order_.clear();
  for (auto& leaf : leaves_) {
    leaf->output()->DisableHashIndex();
  }

  std::vector<ExprPtr> unattached = pattern_->multi_predicates;
  pred_index_of_.clear();
  for (size_t i = 0; i < unattached.size(); ++i) {
    pred_index_of_.push_back(static_cast<int>(i));
  }

  ZS_ASSIGN_OR_RETURN(root_, BuildNode(plan.root, &unattached));
  // Internal roots stream matches straight to the engine instead of
  // materializing them (leaf roots keep the buffer: the leaf must
  // retain its events for purging semantics anyway, and DrainRoot
  // consumes it by watermark).
  if (!root_->is_leaf()) root_->SetSink(this);
  if (!unattached.empty()) {
    return Status::Internal("predicate not attachable to plan: " +
                            unattached.front()->ToString());
  }
  plan_ = plan;
  // One render per plan install: the fingerprint hashes it and the
  // provenance path caches it, so per-match recording never re-renders
  // (Explain allocates — far too hot for the sampled-match path).
  const std::string shape = plan_.Explain(*pattern_);
  plan_fingerprint_ = obs::Fnv1a64(shape);
  obs::CopyLabel(op_path_, shape.c_str());
  trigger_classes_ = pattern_->TriggerClasses();
  if (initial && adaptive_ != nullptr) {
    const StatsCatalog defaults(n, static_cast<double>(pattern_->window));
    adaptive_->OnPlanInstalled(plan_, defaults);
  }
  return Status::OK();
}

namespace {
bool CoversAll(const std::vector<int>& cover, const std::set<int>& classes) {
  for (int c : classes) {
    if (std::find(cover.begin(), cover.end(), c) == cover.end()) return false;
  }
  return true;
}
}  // namespace

void Engine::AttachPredicates(OperatorNode* op,
                              std::vector<ExprPtr>* unattached) {
  // A predicate attaches at the lowest node covering all its classes;
  // since we build bottom-up post-order, "still unattached and covered
  // here" is exactly that node.
  const std::vector<int>& cover = op->covered();
  std::vector<ExprPtr> rest;
  std::vector<int> rest_idx;
  for (size_t i = 0; i < unattached->size(); ++i) {
    const ExprPtr& pred = (*unattached)[i];
    const std::set<int> classes = ReferencedClasses(pred);
    if (!CoversAll(cover, classes)) {
      rest.push_back(pred);
      rest_idx.push_back(pred_index_of_[i]);
      continue;
    }
    op->AttachPredicate(pred, pred_index_of_[i]);
  }
  *unattached = std::move(rest);
  pred_index_of_ = std::move(rest_idx);
}

Result<OperatorNode*> Engine::BuildNode(const PhysNodePtr& node,
                                        std::vector<ExprPtr>* unattached) {
  switch (node->op) {
    case PhysOp::kLeaf:
      return static_cast<OperatorNode*>(
          leaves_[static_cast<size_t>(node->class_idx)].get());

    case PhysOp::kSeq:
    case PhysOp::kConj:
    case PhysOp::kDisj: {
      ZS_ASSIGN_OR_RETURN(OperatorNode * left,
                          BuildNode(node->children[0], unattached));
      ZS_ASSIGN_OR_RETURN(OperatorNode * right,
                          BuildNode(node->children[1], unattached));
      const auto lcov = node->children[0]->CoveredClasses();
      const auto rcov = node->children[1]->CoveredClasses();
      std::unique_ptr<OperatorNode> op;
      SeqNode* seq = nullptr;
      ConjNode* conj = nullptr;
      if (node->op == PhysOp::kSeq) {
        auto s = std::make_unique<SeqNode>(pattern_.get(), left, right,
                                           tracker_);
        seq = s.get();
        op = std::move(s);
      } else if (node->op == PhysOp::kConj) {
        auto c = std::make_unique<ConjNode>(pattern_.get(), left, right,
                                            tracker_);
        conj = c.get();
        op = std::move(c);
      } else {
        op = std::make_unique<DisjNode>(pattern_.get(), left, right,
                                        tracker_);
      }
      op->set_covered(node->CoveredClasses());
      op->set_runtime_stats(windowed_stats_.get());

      // Attach predicates newly covered here; route the first equality
      // predicate through a hash index when enabled.
      const std::vector<int>& cover = op->covered();
      std::vector<ExprPtr> rest;
      std::vector<int> rest_idx;
      bool hashed = false;
      for (size_t i = 0; i < unattached->size(); ++i) {
        const ExprPtr& pred = (*unattached)[i];
        const std::set<int> classes = ReferencedClasses(pred);
        if (!CoversAll(cover, classes)) {
          rest.push_back(pred);
          rest_idx.push_back(pred_index_of_[i]);
          continue;
        }
        if (options_.use_hash_indexes && !hashed &&
            (seq != nullptr || conj != nullptr)) {
          auto eq = AsEqualityJoin(pred);
          // Hash routing requires both classes bound in every record on
          // their side: a record leaving the key class unbound (optional
          // class: disjunction branch) is never indexed under any key,
          // so probes would silently miss it although the predicate
          // vacuous-passes.
          if (eq.has_value() &&
              (optional_class_[static_cast<size_t>(eq->left_class)] ||
               optional_class_[static_cast<size_t>(eq->right_class)])) {
            eq.reset();
          }
          if (eq.has_value()) {
            // Orient so that left_class lies in the left child's cover.
            EqualityJoin oriented = *eq;
            const bool left_in_l =
                std::find(lcov.begin(), lcov.end(), eq->left_class) !=
                lcov.end();
            if (!left_in_l) {
              std::swap(oriented.left_class, oriented.right_class);
              std::swap(oriented.left_field, oriented.right_field);
            }
            const bool ok_split =
                std::find(lcov.begin(), lcov.end(), oriented.left_class) !=
                    lcov.end() &&
                std::find(rcov.begin(), rcov.end(), oriented.right_class) !=
                    rcov.end();
            if (ok_split) {
              if (seq != nullptr) seq->SetHashEquality(oriented);
              if (conj != nullptr) conj->SetHashEquality(oriented);
              hashed = true;
              continue;  // enforced by the probe, not re-evaluated
            }
          }
        }
        op->AttachPredicate(pred, pred_index_of_[i]);
      }
      *unattached = std::move(rest);
      pred_index_of_ = std::move(rest_idx);

      // Negation time-guards (Figure 4's extra constraints).
      if (seq != nullptr) {
        for (int nc : pattern_->NegatedClasses()) {
          const auto in = [](const std::vector<int>& v, int x) {
            return std::find(v.begin(), v.end(), x) != v.end();
          };
          if (in(rcov, nc) && in(lcov, nc - 1)) {
            seq->AddNegGuard(nc, /*neg_bound_on_right=*/true);
          } else if (in(lcov, nc) && in(rcov, nc + 1)) {
            seq->AddNegGuard(nc, /*neg_bound_on_right=*/false);
          }
        }
      }

      OperatorNode* raw = op.get();
      internal_nodes_.push_back(std::move(op));
      assembly_order_.push_back(raw);
      return raw;
    }

    case PhysOp::kNSeq: {
      const PhysNodePtr& neg_child =
          node->neg_left ? node->children[0] : node->children[1];
      const PhysNodePtr& other_child =
          node->neg_left ? node->children[1] : node->children[0];
      if (!neg_child->is_leaf()) {
        return Status::SemanticError("NSEQ negated operand must be a leaf");
      }
      LeafNode* neg =
          leaves_[static_cast<size_t>(neg_child->class_idx)].get();
      ZS_ASSIGN_OR_RETURN(OperatorNode * other,
                          BuildNode(other_child, unattached));
      auto op = std::make_unique<NSeqNode>(pattern_.get(), neg, other,
                                           node->neg_left, tracker_);
      op->set_covered(node->CoveredClasses());
      op->set_runtime_stats(windowed_stats_.get());

      // NSEQ-local predicates: everything covered here and not already
      // attached deeper. Predicates referencing this negated class plus
      // classes outside this node's cover would change which event
      // negates — reject such plans (Section 4.4.2's restriction).
      const int nc = neg_child->class_idx;
      AttachPredicates(op.get(), unattached);
      for (const ExprPtr& pred : *unattached) {
        if (ReferencedClasses(pred).count(nc) > 0) {
          return Status::NotSupported(
              "negated class '" +
              pattern_->classes[static_cast<size_t>(nc)].alias +
              "' has predicates spanning multiple non-negated classes; "
              "use a negation filter on top (Section 4.4.2)");
        }
      }
      OperatorNode* raw = op.get();
      internal_nodes_.push_back(std::move(op));
      assembly_order_.push_back(raw);
      return raw;
    }

    case PhysOp::kKSeq: {
      OperatorNode* start = nullptr;
      OperatorNode* end = nullptr;
      if (node->children[0] != nullptr) {
        ZS_ASSIGN_OR_RETURN(start, BuildNode(node->children[0], unattached));
      }
      LeafNode* closure =
          leaves_[static_cast<size_t>(node->children[1]->class_idx)].get();
      if (node->children[2] != nullptr) {
        ZS_ASSIGN_OR_RETURN(end, BuildNode(node->children[2], unattached));
      }
      auto op = std::make_unique<KSeqNode>(pattern_.get(), start, closure,
                                           end, tracker_);
      op->set_covered(node->CoveredClasses());
      op->set_runtime_stats(windowed_stats_.get());
      AttachPredicates(op.get(), unattached);
      // A non-aggregate predicate on the closure class filters closure
      // events one by one (Algorithm 4's qualification step), which is
      // only possible while the group is being assembled HERE. One that
      // also references a class outside this KSEQ would have to attach
      // higher, where the group already exists and per-event filtering
      // is impossible — reject instead of silently dropping matches.
      const int kc = closure->class_idx();
      for (const ExprPtr& pred : *unattached) {
        if (ReferencedClasses(pred).count(kc) > 0 &&
            !ContainsAggregate(pred)) {
          return Status::NotSupported(
              "closure class '" +
              pattern_->classes[static_cast<size_t>(kc)].alias +
              "' has a non-aggregate predicate spanning classes outside "
              "the KSEQ operands");
        }
      }
      OperatorNode* raw = op.get();
      internal_nodes_.push_back(std::move(op));
      assembly_order_.push_back(raw);
      return raw;
    }

    case PhysOp::kNegFilter: {
      ZS_ASSIGN_OR_RETURN(OperatorNode * input,
                          BuildNode(node->children[0], unattached));
      LeafNode* neg_leaf =
          leaves_[static_cast<size_t>(node->class_idx)].get();
      auto op = std::make_unique<NegFilterNode>(
          pattern_.get(), input, neg_leaf, node->class_idx, tracker_);
      op->set_covered(node->CoveredClasses());
      op->set_runtime_stats(windowed_stats_.get());
      AttachPredicates(op.get(), unattached);
      OperatorNode* raw = op.get();
      internal_nodes_.push_back(std::move(op));
      assembly_order_.push_back(raw);
      return raw;
    }
  }
  return Status::Internal("unreachable physical operator");
}

ZS_HOT void Engine::Offer(const EventPtr& event) {
  ++events_pushed_;
  if (event->timestamp() < max_ts_seen_) {
    // Leaf buffers require timestamp order; without a reorder stage,
    // late events are dropped (and counted) rather than corrupting the
    // end-timestamp invariant.
    ++late_events_;
    return;
  }
  max_ts_seen_ = std::max(max_ts_seen_, event->timestamp());
  if (windowed_stats_ != nullptr) windowed_stats_->OnEvent(event->timestamp());
  for (auto& leaf : leaves_) {
    leaf->Offer(event);
  }
}

ZS_HOT void Engine::PushOrdered(const EventPtr& event) {
#ifndef ZSTREAM_OBS_STRIPPED
  if (options_.slow_event_ns > 0) {
    const uint64_t t0 = obs::MonotonicNanos();
    Offer(event);
    if (++pending_in_batch_ >= options_.batch_size) {
      AssemblyRound();
    }
    const uint64_t elapsed = obs::MonotonicNanos() - t0;
    if (elapsed >= static_cast<uint64_t>(options_.slow_event_ns)) {
      LogSlowEvent(elapsed);
    }
    return;
  }
#endif
  Offer(event);
  if (++pending_in_batch_ >= options_.batch_size) {
    AssemblyRound();
  }
}

ZS_HOT void Engine::Push(const EventPtr& event) {
  if (reorder_ != nullptr) {
    reorder_->Push(event);
    return;
  }
  PushOrdered(event);
}

ZS_HOT void Engine::OfferSpan(const EventPtr* events, size_t n) {
  size_t i = 0;
  while (i < n) {
    // Longest in-order run starting at i: offered to every leaf as one
    // columnar batch.
    size_t j = i;
    Timestamp run_max = max_ts_seen_;
    while (j < n) {
      const Timestamp t = events[j]->timestamp();
      if (t < run_max) break;
      run_max = t;
      ++j;
    }
    if (j > i) {
      events_pushed_ += j - i;
      max_ts_seen_ = run_max;
      if (windowed_stats_ != nullptr) {
        for (size_t k = i; k < j; ++k) {
          windowed_stats_->OnEvent(events[k]->timestamp());
        }
      }
      for (auto& leaf : leaves_) {
        leaf->OfferBatch(events + i, static_cast<int>(j - i));
      }
      i = j;
    }
    // Late stragglers inside the span: dropped and counted, like Offer.
    while (i < n && events[i]->timestamp() < max_ts_seen_) {
      ++events_pushed_;
      ++late_events_;
      ++i;
    }
  }
}

ZS_HOT void Engine::PushBatch(const EventBatch& batch) {
  if (reorder_ != nullptr || options_.slow_event_ns > 0) {
    // Reordering and per-event slow-event timing are inherently
    // record-at-a-time; fall back.
    for (size_t i = 0; i < batch.count; ++i) Push(batch.data[i]);
    return;
  }
  size_t i = 0;
  while (i < batch.count) {
    if (pending_in_batch_ >= options_.batch_size) {
      AssemblyRound();
      continue;
    }
    const size_t room =
        static_cast<size_t>(options_.batch_size - pending_in_batch_);
    const size_t take = std::min(batch.count - i, room);
    OfferSpan(batch.data + i, take);
    pending_in_batch_ += static_cast<int>(take);
    i += take;
  }
  if (pending_in_batch_ >= options_.batch_size) AssemblyRound();
}

void Engine::Finish() {
  if (reorder_ != nullptr) reorder_->Flush();
  AssemblyRound();
}

ZS_HOT void Engine::AssemblyRound() {
  pending_in_batch_ = 0;
  // Idle round unless a trigger class has an unconsumed instance
  // (Section 4.3, steps 1-2).
  Timestamp min_end = kMaxTimestamp;
  bool any = false;
  for (int t : trigger_classes_) {
    const auto first =
        leaves_[static_cast<size_t>(t)]->output()->FirstUnconsumedEndTs();
    if (first.has_value()) {
      any = true;
      min_end = std::min(min_end, *first);
    }
  }
  if (!any) return;

  const Timestamp eat = min_end - pattern_->window;
  const Timestamp horizon = max_ts_seen_ + 1;
  // Streaming-sink state for the round: OnMatch filters against the
  // round's EAT and records provenance under the sampled trace id.
  round_eat_ = eat;
  cur_trace_ = obs::CurrentTraceId();
  for (auto& leaf : leaves_) {
    leaf->set_horizon(horizon);
    leaf->output()->PurgeBefore(eat);
  }
#ifndef ZSTREAM_OBS_STRIPPED
  // The timed loop runs for profiling (EXPLAIN ANALYZE / slow-event
  // attribution) and for traced rounds; `add_eval_ns` stays gated on
  // profiling_ alone so tracing never perturbs the `time=` column.
  const uint64_t trace = cur_trace_;
  if (profiling_ || trace != 0) {
    const uint64_t round_t0 = obs::MonotonicNanos();
    uint64_t t0 = round_t0;
    for (OperatorNode* op : assembly_order_) {
      op->set_horizon(horizon);
      op->Assemble(eat);
      const uint64_t t1 = obs::MonotonicNanos();
      if (profiling_) op->add_eval_ns(t1 - t0);
      obs::TraceRecord(obs::CurrentLane(), obs::SpanKind::kOperator, trace,
                       t0, t1, PhysOpName(op->op()), op->records_emitted());
      t0 = t1;
    }
    obs::TraceRecord(obs::CurrentLane(), obs::SpanKind::kExec, trace,
                     round_t0, obs::MonotonicNanos(), options_.label.c_str(),
                     plan_fingerprint_);
  } else {
    for (OperatorNode* op : assembly_order_) {
      op->set_horizon(horizon);
      op->Assemble(eat);
    }
  }
#else
  for (OperatorNode* op : assembly_order_) {
    op->set_horizon(horizon);
    op->Assemble(eat);
  }
#endif
  DrainRoot(eat);
  ++assembly_rounds_;
  if (rebuild_round_pending_) rebuild_round_pending_ = false;
  MaybeAdapt();
}

ZS_HOT bool Engine::NeedsPayload() const {
  return static_cast<bool>(callback_) || cur_trace_ != 0;
}

ZS_HOT void Engine::OnMatch(Timestamp start_ts, Timestamp end_ts,
                            const EventPtr* slots, int num_slots,
                            const EventGroupPtr* group) {
  // Replicates DrainRoot's EAT filter: operators already skip stale
  // inputs, this is the defensive boundary for the streamed path.
  if (start_ts < round_eat_) return;
  ++num_matches_;
  if (cur_trace_ != 0) {
    RecordMatchTrace(cur_trace_, start_ts, end_ts, slots, num_slots,
                     group != nullptr ? group->get() : nullptr);
  }
  if (callback_) {
    Match m;
    m.span = TimeSpan{start_ts, end_ts};
    if (slots != nullptr) {
      m.slots.assign(slots, slots + num_slots);  // zs-hotpath-allow(match payload copy, only with a consumer installed)
    }
    if (group != nullptr) m.group = *group;
    callback_(std::move(m));
  }
}

ZS_HOT void Engine::DrainRoot(Timestamp eat) {
  // Internal roots stream through OnMatch and keep their buffer empty;
  // this loop only does work for leaf roots (single-class patterns).
  Buffer& out = *root_->output();
  for (RecordId id = out.watermark(); id < out.end_id(); ++id) {
    const RecordRef rec = out.Get(id);
    OnMatch(rec.start_ts, rec.end_ts, rec.slots, rec.num_slots, rec.group_sp);
  }
  out.SetWatermark(out.end_id());
  if (!root_->is_leaf()) {
    out.Clear();
  } else {
    out.PurgeBefore(eat);
  }
}

void Engine::RecordMatchTrace(uint64_t trace_id, Timestamp start_ts,
                              Timestamp end_ts, const EventPtr* slots,
                              int num_slots, const EventGroup* group) {
  const uint64_t now = obs::MonotonicNanos();
  obs::TraceRecord(obs::CurrentLane(), obs::SpanKind::kMatch, trace_id, now,
                   now, options_.label.c_str(), plan_fingerprint_);
  // The span above is per match (tests reconcile the kMatch counter
  // against sink totals); full provenance is capped per traced batch —
  // the global ring holds 256 entries, so recording every match of a
  // high-rate query (tens of thousands per batch) would be almost
  // entirely overwritten work, and it is what pushed 1-in-100 sampling
  // past the overhead budget.
  if (trace_id != prov_trace_) {
    prov_trace_ = trace_id;
    prov_in_trace_ = 0;
  }
  if (prov_in_trace_ >= kProvenancePerTrace) return;
  ++prov_in_trace_;
  obs::MatchProvenance p;
  p.trace_id = trace_id;
  p.plan_fingerprint = plan_fingerprint_;
  p.match_start_ts = start_ts;
  p.match_end_ts = end_ts;
  obs::CopyLabel(p.label, options_.label.c_str());
  obs::CopyLabel(p.op_path, op_path_);
  auto add_event = [&p](const EventPtr& e) {
    if (e == nullptr) return;
    if (p.num_events < obs::MatchProvenance::kMaxEvents) {
      p.event_ids[p.num_events] = e->id();
      p.event_ts[p.num_events] = e->timestamp();
    }
    ++p.num_events;
  };
  for (int i = 0; i < num_slots; ++i) add_event(slots[i]);
  if (group != nullptr) {
    for (const EventPtr& e : *group) add_event(e);
  }
  obs::Tracer::Global().RecordProvenance(p);
}

void Engine::MaybeAdapt() {
  if (adaptive_ == nullptr || windowed_stats_ == nullptr) return;
  if (assembly_rounds_ %
          static_cast<uint64_t>(
              std::max(options_.adaptive_options.check_every_rounds, 1)) !=
      0) {
    return;
  }
  const StatsCatalog defaults(pattern_->num_classes(),
                              static_cast<double>(pattern_->window));
  const StatsCatalog current = windowed_stats_->Snapshot(*pattern_, defaults);
  std::optional<PhysicalPlan> next = adaptive_->MaybeReplan(current);
  if (next.has_value()) {
    const Status st = SwitchPlan(*next);
    if (!st.ok()) {
      ZS_LOG(Warn) << "plan switch failed: " << st.ToString();
    }
  }
}

Status Engine::SwitchPlan(const PhysicalPlan& plan) {
  ZS_RETURN_IF_ERROR(Build(plan, /*initial=*/false));
  // Rebuild round (Section 5.3): non-trigger leaves replay their
  // retained records so the new plan's internal state is reconstructed;
  // trigger leaves keep their consumption point, so no match is
  // duplicated.
  for (int c = 0; c < pattern_->num_classes(); ++c) {
    const bool is_trigger =
        std::find(trigger_classes_.begin(), trigger_classes_.end(), c) !=
        trigger_classes_.end();
    if (!is_trigger) {
      leaves_[static_cast<size_t>(c)]->output()->RewindWatermark();
    }
  }
  rebuild_round_pending_ = true;
  ++plan_switches_;
  return Status::OK();
}

StatsCatalog Engine::StatsSnapshot(const StatsCatalog& defaults) const {
  if (windowed_stats_ == nullptr) return defaults;
  return windowed_stats_->Snapshot(*pattern_, defaults);
}

uint64_t Engine::pairs_tried() const {
  uint64_t total = 0;
  for (const auto& op : internal_nodes_) {
    total += op->pairs_tried();
  }
  return total;
}

namespace {

NodeProfile ProfileNode(const Pattern& pattern, const OperatorNode& node) {
  NodeProfile out;
  out.records_out = node.records_emitted();
  out.pairs_tried = node.pairs_tried();
  out.buffer_records = node.output()->size();
  out.eval_ns = node.eval_ns();
  if (node.is_leaf()) {
    const auto& leaf = static_cast<const LeafNode&>(node);
    out.label =
        std::string("LEAF ") +
        pattern.classes[static_cast<size_t>(leaf.class_idx())].alias;
    out.events_in = leaf.offered();
    return out;
  }
  out.label = PhysOpName(node.op());
  for (const OperatorNode* child : node.children()) {
    out.children.push_back(ProfileNode(pattern, *child));
    // A node consumes exactly what its children emit; summing the
    // children's output counters here keeps the hot path free of a
    // second per-record counter.
    out.events_in += out.children.back().records_out;
  }
  return out;
}

}  // namespace

NodeProfile Engine::Profile() const {
  if (root_ == nullptr) return NodeProfile{};
  return ProfileNode(*pattern_, *root_);
}

std::string Engine::ExplainAnalyze() const {
  std::ostringstream os;
  if (!options_.label.empty()) os << "query=" << options_.label << " ";
  os << "plan=" << plan_.Explain(*pattern_);
  os.precision(6);
  os << " cost_est=" << plan_.estimated_cost
     << " observed_pairs=" << pairs_tried() << "\n";
  os << "events_pushed=" << events_pushed_ << " matches=" << num_matches_
     << " rounds=" << assembly_rounds_ << " plan_switches=" << plan_switches_
     << " late=" << late_events_;
  if (options_.slow_event_ns > 0) os << " slow_events=" << slow_events_;
  os << "\n" << RenderNodeProfile(Profile());
  return os.str();
}

void Engine::LogSlowEvent(uint64_t elapsed_ns) {
  ++slow_events_;
  const std::string& name = options_.label.empty() ? "?" : options_.label;
  obs::Registry::Default()
      .GetCounter("zstream_slow_events_total", {{"query", name}},
                  "Events whose processing exceeded the slow-event "
                  "threshold")
      ->Inc();
  // At most one log line per second per engine; the rest are counted
  // and reported with the next line.
  constexpr uint64_t kLogPeriodNs = 1000000000ULL;
  const uint64_t now = obs::MonotonicNanos();
  if (last_slow_log_ns_ != 0 && now - last_slow_log_ns_ < kLogPeriodNs) {
    ++slow_suppressed_;
    return;
  }
  last_slow_log_ns_ = now;
  // slow_event_ns > 0 implies profiling_, so cumulative eval times are
  // live; the hottest node is the best single suspect to name.
  const OperatorNode* hottest = nullptr;
  for (const OperatorNode* op : assembly_order_) {
    if (hottest == nullptr || op->eval_ns() > hottest->eval_ns()) {
      hottest = op;
    }
  }
  std::ostringstream line;
  line << "slow event in query '" << name << "': "
       << static_cast<double>(elapsed_ns) / 1e6 << " ms (threshold "
       << static_cast<double>(options_.slow_event_ns) / 1e6 << " ms)";
  if (hottest != nullptr) {
    line << ", hottest node " << PhysOpName(hottest->op()) << " (cum "
         << static_cast<double>(hottest->eval_ns()) / 1e6 << " ms)";
  }
  // A traced slow event is directly inspectable: name the trace id so
  // the log line joins against GET /trace output, and snapshot the
  // span rings (flight recorder rate-limits to one dump per window) so
  // "what else was running" survives for post-mortem.
  const uint64_t trace = obs::CurrentTraceId();
  if (trace != 0) {
    line << ", trace=0x" << std::hex << trace << std::dec;
  }
  if (slow_suppressed_ > 0) {
    line << "; " << slow_suppressed_ << " similar suppressed";
    slow_suppressed_ = 0;
  }
  ZS_LOG(Warn) << line.str();
  obs::FlightRecorder::Global().TriggerDump("slow-event");
}

}  // namespace zstream
