#include "exec/hash_index.h"

#include <algorithm>

namespace zstream {

const std::vector<uint64_t> HashIndex::kEmpty;

void HashIndex::Compact(uint64_t base_id) {
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    std::vector<uint64_t>& ids = it->second;
    auto first_live = std::lower_bound(ids.begin(), ids.end(), base_id);
    ids.erase(ids.begin(), first_live);
    if (ids.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace zstream
