#include "exec/partitioned_engine.h"

#include <sstream>

#include "common/macros.h"
#include "obs/trace.h"
#include "verify/plan_verifier.h"

namespace zstream {

PartitionedEngine::PartitionedEngine(PatternPtr pattern, PhysicalPlan plan,
                                     const EngineOptions& options,
                                     MemoryTracker* tracker)
    : pattern_(std::move(pattern)),
      plan_(std::move(plan)),
      options_(options),
      tracker_(tracker) {
  if (tracker_ == nullptr) {
    owned_tracker_ = std::make_unique<MemoryTracker>();
    tracker_ = owned_tracker_.get();
  }
  plan_fingerprint_ = obs::Fnv1a64(plan_.Explain(*pattern_));
  if (options_.reorder_slack > 0) {
    reorder_ = std::make_unique<ReorderStage>(
        options_.reorder_slack,
        [this](const EventPtr& event) { PushOrdered(event); });
    // Sub-engines receive already-ordered events; a per-partition stage
    // would only buffer them again (and could not see cross-partition
    // disorder anyway).
    options_.reorder_slack = 0;
  }
}

Result<std::unique_ptr<PartitionedEngine>> PartitionedEngine::Create(
    PatternPtr pattern, const PhysicalPlan& plan,
    const EngineOptions& options, MemoryTracker* tracker) {
  if (!pattern->partition.has_value()) {
    return Status::InvalidArgument(
        "pattern has no partition key; use Engine directly");
  }
  ZS_RETURN_IF_ERROR(pattern->Validate());
  ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern, plan));
  // Partitions are created lazily and GetOrCreate cannot surface a
  // construction error per event — prove the (pattern, plan, options)
  // combination actually instantiates NOW, so an unsupported shape
  // (e.g. non-local negation predicates under a pushed-down NSEQ)
  // fails loudly instead of silently producing zero matches.
  ZS_RETURN_IF_ERROR(Engine::Create(pattern, plan, options).status());
  auto engine = std::unique_ptr<PartitionedEngine>(
      new PartitionedEngine(std::move(pattern), plan, options, tracker));
  engine->key_field_ = engine->pattern_->partition->field_indices.front();
  return engine;
}

Result<PartitionedEngine::Partition*> PartitionedEngine::GetOrCreate(
    const Value& key) {
  auto it = partitions_.find(key);
  if (it != partitions_.end()) return &it->second;
  // The (pattern, plan, options) combination was validated, verified and
  // probe-instantiated once in Create; lazily-created partitions run on
  // the hot path (a new key arrives mid-stream) and skip re-proving it.
  ZS_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> sub,
      Engine::CreateTrusted(pattern_, plan_, options_, tracker_));
  // Unconditional: partitions created after SetMatchCallback inherit the
  // stored callback, including an explicitly cleared (empty) one.
  sub->SetMatchCallback(callback_);
  Partition part;
  part.engine = std::move(sub);
  auto [pos, inserted] = partitions_.emplace(key, std::move(part));
  (void)inserted;
  return &pos->second;
}

ZS_HOT void PartitionedEngine::Push(const EventPtr& event) {
  if (reorder_ != nullptr) {
    reorder_->Push(event);
    return;
  }
  PushOrdered(event);
}

ZS_HOT void PartitionedEngine::PushOrdered(const EventPtr& event) {
  ++events_pushed_;
  const Value& key = event->value(key_field_);
  if (key.is_null()) return;
  Result<Partition*> part = GetOrCreate(key);
  if (!part.ok()) return;
  (*part)->engine->Offer(event);
  if (!(*part)->dirty) {
    (*part)->dirty = true;
    dirty_.push_back(*part);
  }
  if (++pending_in_batch_ >= options_.batch_size) {
    RunRounds();
  }
}

void PartitionedEngine::RunRounds() {
  for (Partition* part : dirty_) {
    part->engine->AssemblyRound();
    part->dirty = false;
  }
  dirty_.clear();
  pending_in_batch_ = 0;
}

void PartitionedEngine::Finish() {
  if (reorder_ != nullptr) reorder_->Flush();
  RunRounds();
}

uint64_t PartitionedEngine::late_events() const {
  uint64_t total = reorder_ != nullptr ? reorder_->late_dropped() : 0;
  for (const auto& [key, part] : partitions_) {
    total += part.engine->late_events();
  }
  return total;
}

uint64_t PartitionedEngine::num_matches() const {
  uint64_t total = 0;
  for (const auto& [key, part] : partitions_) {
    total += part.engine->num_matches();
  }
  return total;
}

Status PartitionedEngine::SwitchPlan(const PhysicalPlan& plan) {
  // Verify before touching any partition: a refused plan must leave
  // every sub-engine on the old one.
  ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern_, plan));
  for (auto& [key, part] : partitions_) {
    ZS_RETURN_IF_ERROR(part.engine->SwitchPlan(plan));
  }
  plan_ = plan;
  plan_fingerprint_ = obs::Fnv1a64(plan_.Explain(*pattern_));
  ++plan_switches_;
  return Status::OK();
}

StatsCatalog PartitionedEngine::StatsSnapshot(
    const StatsCatalog& defaults) const {
  std::vector<StatsCatalog> parts;
  std::vector<double> weights;
  parts.reserve(partitions_.size());
  weights.reserve(partitions_.size());
  for (const auto& [key, part] : partitions_) {
    if (part.engine->windowed_stats() == nullptr) continue;
    parts.push_back(part.engine->StatsSnapshot(defaults));
    weights.push_back(static_cast<double>(part.engine->events_pushed()));
  }
  if (parts.empty()) return defaults;
  return MergeStatsCatalogs(parts, weights);
}

NodeProfile PartitionedEngine::Profile() const {
  NodeProfile merged;
  bool first = true;
  for (const auto& [key, part] : partitions_) {
    if (first) {
      merged = part.engine->Profile();
      first = false;
      continue;
    }
    const Status st = MergeNodeProfile(&merged, part.engine->Profile());
    if (!st.ok()) return merged;  // unreachable: partitions share plan_
  }
  return merged;
}

std::string PartitionedEngine::ExplainAnalyze() const {
  std::ostringstream os;
  if (!options_.label.empty()) os << "query=" << options_.label << " ";
  os << "plan=" << plan_.Explain(*pattern_);
  os.precision(6);
  os << " cost_est=" << plan_.estimated_cost << " [hash-partitioned on "
     << pattern_->partition->field_name << ", " << partitions_.size()
     << " partitions]\n";
  os << "events_pushed=" << events_pushed_
     << " matches=" << num_matches()
     << " plan_switches=" << plan_switches_ << " late=" << late_events()
     << "\n";
  if (partitions_.empty()) {
    os << "(no partitions instantiated yet)\n";
  } else {
    os << RenderNodeProfile(Profile());
  }
  return os.str();
}

void PartitionedEngine::SetLabel(const std::string& label) {
  options_.label = label;
  for (auto& [key, part] : partitions_) {
    part.engine->SetLabel(label);
  }
}

}  // namespace zstream
