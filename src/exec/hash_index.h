// Equality hash indexes over buffers (Section 5.2.2).
//
// Maps an attribute value to the sequence ids of the records whose key
// slot carries that value, in insertion (== end-timestamp) order. Probes
// during SEQ/CONJ evaluation replace the inner scan with a bucket walk.
#ifndef ZSTREAM_EXEC_HASH_INDEX_H_
#define ZSTREAM_EXEC_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "exec/record.h"

namespace zstream {

/// \brief Value -> record-id multimap for one buffer.
class HashIndex {
 public:
  HashIndex(int class_idx, int field_idx)
      : class_idx_(class_idx), field_idx_(field_idx) {}

  int class_idx() const { return class_idx_; }
  int field_idx() const { return field_idx_; }

  /// Extracts this index's key from a record (null when the slot is
  /// unbound — such records are not indexed).
  Value KeyOf(const Record& r) const {
    const EventPtr& e = r.slots[static_cast<size_t>(class_idx_)];
    return e == nullptr ? Value::Null() : e->value(field_idx_);
  }

  void Insert(const Record& r, uint64_t id) {
    Value key = KeyOf(r);
    if (key.is_null()) return;
    buckets_[std::move(key)].push_back(id);
  }

  /// Columnar-buffer path: the caller extracted the key from the chunk's
  /// slot column (null keys are not indexed).
  void Insert(Value key, uint64_t id) {
    if (key.is_null()) return;
    buckets_[std::move(key)].push_back(id);
  }

  /// Ids (ascending) of records whose key equals `key`; may contain ids
  /// below the buffer's base id (purged) — callers skip those.
  const std::vector<uint64_t>& Probe(const Value& key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? kEmpty : it->second;
  }

  /// Drops bucket prefixes below `base_id` (amortized cleanup after
  /// purges).
  void Compact(uint64_t base_id);

  size_t bucket_count() const { return buckets_.size(); }

 private:
  static const std::vector<uint64_t> kEmpty;

  int class_idx_;
  int field_idx_;
  std::unordered_map<Value, std::vector<uint64_t>, ValueHasher> buckets_;
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_HASH_INDEX_H_
