#include "exec/record.h"

#include <sstream>

#include "common/macros.h"

namespace zstream {

ZS_HOT Record Record::FromEvent(int class_idx, int num_classes,
                         const EventPtr& event) {
  Record r;
  r.start_ts = event->timestamp();
  r.end_ts = event->timestamp();
  r.slots.assign(static_cast<size_t>(num_classes), nullptr);
  r.slots[static_cast<size_t>(class_idx)] = event;
  return r;
}

ZS_HOT Record Record::Merge(const Record& a, const Record& b, Timestamp start,
                     Timestamp end) {
  Record r;
  r.start_ts = start;
  r.end_ts = end;
  const size_t n = a.slots.size();
  r.slots.resize(n);
  for (size_t i = 0; i < n; ++i) {
    r.slots[i] = a.slots[i] != nullptr ? a.slots[i] : b.slots[i];
  }
  r.group = a.group != nullptr ? a.group : b.group;
  return r;
}

size_t Record::ByteSize(bool count_events) const {
  // The group *handle* is part of sizeof(Record); the shared payload is
  // deliberately not charged here — see GroupByteSize.
  size_t bytes = sizeof(Record) + slots.capacity() * sizeof(EventPtr);
  if (count_events) {
    for (const EventPtr& e : slots) {
      if (e != nullptr) bytes += e->ByteSize();
    }
  }
  return bytes;
}

std::string Record::ToString() const {
  std::ostringstream os;
  os << "[" << start_ts << "," << end_ts << "](";
  bool first = true;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == nullptr) continue;
    if (!first) os << ", ";
    first = false;
    os << i << ":" << slots[i]->timestamp();
  }
  if (group != nullptr) {
    os << ", group{";
    for (size_t i = 0; i < group->size(); ++i) {
      if (i > 0) os << ",";
      os << (*group)[i]->timestamp();
    }
    os << "}";
  }
  os << ")";
  return os.str();
}

}  // namespace zstream
