// Per-plan-node instrumentation snapshots (the EXPLAIN ANALYZE tree).
//
// A NodeProfile mirrors one operator of an engine's plan tree with its
// live counters: records in/out, input combinations tried, current
// buffer occupancy, and cumulative assembly time when the engine runs
// with EngineOptions::profile. Profiles from engines sharing one plan
// shape (hash partitions of a PartitionedEngine, shard engines of the
// concurrent runtime) merge by structural position, so the rendered
// tree shows totals across the whole query regardless of how execution
// was split.
#ifndef ZSTREAM_EXEC_NODE_PROFILE_H_
#define ZSTREAM_EXEC_NODE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace zstream {

/// \brief One operator's counters, with children in plan order.
struct NodeProfile {
  /// Operator rendering, e.g. "SEQ", "KSEQ", "LEAF IBM".
  std::string label;
  /// Records arriving from children since engine start (for a leaf:
  /// primitive events offered to it, before predicate admission).
  uint64_t events_in = 0;
  /// Records appended to this node's output buffer (for a leaf:
  /// admitted events; for the plan root: emitted matches).
  uint64_t records_out = 0;
  /// Input combinations tried (the empirical Ci of the cost model).
  uint64_t pairs_tried = 0;
  /// Records currently held in the output buffer.
  uint64_t buffer_records = 0;
  /// Cumulative wall time spent in Assemble (0 unless profiling).
  uint64_t eval_ns = 0;
  std::vector<NodeProfile> children;

  bool SameShape(const NodeProfile& other) const;
};

/// Sums `from` into `into`. The trees must have identical shape (same
/// labels, same child arity, recursively) — true for any two engines
/// instantiated from one PhysicalPlan; returns Internal otherwise.
Status MergeNodeProfile(NodeProfile* into, const NodeProfile& from);

/// Renders the profile tree, one node per line, two-space indented:
///   SEQ in=80 out=12 pairs=640 buf=0 time=1.24ms
///     LEAF IBM in=60000 out=20000 buf=31
/// `time=` is omitted for nodes that were never timed.
std::string RenderNodeProfile(const NodeProfile& root);

}  // namespace zstream

#endif  // ZSTREAM_EXEC_NODE_PROFILE_H_
