// Hash-partitioned execution (Section 5.2.2, Figure 4).
//
// When one attribute's equality predicates connect every event class
// (e.g. stock.name in Query 2 or the client IP in Query 8), the analyzer
// removes those predicates and records a partition key; this engine then
// routes each event to a per-key sub-engine, turning the equality join
// into partition locality.
#ifndef ZSTREAM_EXEC_PARTITIONED_ENGINE_H_
#define ZSTREAM_EXEC_PARTITIONED_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/engine.h"
#include "exec/engine_core.h"
#include "exec/reorder.h"

namespace zstream {

/// \brief Routes events to per-key Engines and drives their rounds.
class PartitionedEngine : public EngineCore {
 public:
  static Result<std::unique_ptr<PartitionedEngine>> Create(
      PatternPtr pattern, const PhysicalPlan& plan,
      const EngineOptions& options = {}, MemoryTracker* tracker = nullptr);

  ZS_DISALLOW_COPY_AND_ASSIGN(PartitionedEngine);

  void Push(const EventPtr& event) override;
  void Finish() override;

  /// Stored, then propagated to every existing partition AND to every
  /// partition created later (GetOrCreate installs callback_
  /// unconditionally, so clearing the callback also clears it on future
  /// partitions).
  void SetMatchCallback(Engine::MatchCallback cb) override {
    callback_ = std::move(cb);
    for (auto& [key, part] : partitions_) {
      part.engine->SetMatchCallback(callback_);
    }
  }

  /// Switches every existing partition's plan (Section 5.3's state-
  /// preserving switch) and instantiates future partitions with it.
  Status SwitchPlan(const PhysicalPlan& plan) override;

  /// Event-weighted merge of the per-partition windowed stats (partition
  /// rates sum; selectivities average). `defaults` when no partition has
  /// stats to report.
  StatsCatalog StatsSnapshot(const StatsCatalog& defaults) const override;

  uint64_t num_matches() const override;
  uint64_t events_pushed() const override { return events_pushed_; }
  uint64_t plan_switches() const { return plan_switches_; }
  /// Events dropped for arriving out of order beyond the slack (the
  /// partition-level reorder stage plus any per-partition drops).
  uint64_t late_events() const;
  /// Renders the current plan (reflects SwitchPlan updates).
  std::string ExplainPlan() const { return plan_.Explain(*pattern_); }
  size_t num_partitions() const { return partitions_.size(); }
  MemoryTracker& memory() override { return *tracker_; }
  const Pattern& pattern() const override { return *pattern_; }

  /// Structural merge of every partition's node profile (all partitions
  /// share one plan shape); empty profile before the first partition.
  NodeProfile Profile() const override;
  /// Merged plan tree with live counters, plus engine totals.
  std::string ExplainAnalyze() const;

  /// Propagates to existing partitions and seeds future ones.
  void SetLabel(const std::string& label) override;

  /// All partitions share one plan shape, so the partition-level plan's
  /// fingerprint stands for every sub-engine (refreshed by SwitchPlan).
  uint64_t plan_fingerprint() const override { return plan_fingerprint_; }

 private:
  PartitionedEngine(PatternPtr pattern, PhysicalPlan plan,
                    const EngineOptions& options, MemoryTracker* tracker);

  struct Partition {
    std::unique_ptr<Engine> engine;
    bool dirty = false;
  };

  Result<Partition*> GetOrCreate(const Value& key);
  void PushOrdered(const EventPtr& event);
  void RunRounds();

  PatternPtr pattern_;
  PhysicalPlan plan_;
  EngineOptions options_;
  MemoryTracker* tracker_;
  std::unique_ptr<MemoryTracker> owned_tracker_;
  int key_field_ = -1;

  /// Partition-level reordering: events must be re-sequenced BEFORE
  /// they fan out to per-key sub-engines (each sub-engine only sees its
  /// key's subsequence, so a per-partition stage could never restore
  /// cross-partition round order).
  std::unique_ptr<ReorderStage> reorder_;

  std::unordered_map<Value, Partition, ValueHasher> partitions_;
  std::vector<Partition*> dirty_;
  int pending_in_batch_ = 0;
  uint64_t events_pushed_ = 0;
  uint64_t plan_switches_ = 0;
  uint64_t plan_fingerprint_ = 0;
  Engine::MatchCallback callback_;
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_PARTITIONED_ENGINE_H_
