// Reordering stage for out-of-order input (Section 4.1):
//
//   "ZStream assumes that primitive events from data sources
//    continuously stream into leaf buffers in time order. If disorder
//    is a problem, a reordering operator may be placed just after the
//    leaf buffer."
//
// This stage buffers events inside a bounded disorder window (`slack`)
// and releases them in timestamp order: when an event with timestamp t
// arrives, every buffered event with timestamp <= t - slack can no
// longer be displaced and is emitted. Events arriving more than `slack`
// late are dropped and counted.
#ifndef ZSTREAM_EXEC_REORDER_H_
#define ZSTREAM_EXEC_REORDER_H_

#include <functional>
#include <map>

#include "common/timestamp.h"
#include "event/event.h"

namespace zstream {

/// \brief Bounded out-of-orderness buffer that feeds a sink in
/// timestamp order.
class ReorderStage {
 public:
  using Sink = std::function<void(const EventPtr&)>;

  ReorderStage(Duration slack, Sink sink)
      : slack_(slack), sink_(std::move(sink)) {}

  /// Accepts an event with bounded disorder; emits every event whose
  /// position can no longer change.
  void Push(const EventPtr& event) {
    const Timestamp ts = event->timestamp();
    if (ts < emitted_through_) {
      ++late_dropped_;
      return;
    }
    pending_.emplace(ts, event);
    max_seen_ = std::max(max_seen_, ts);
    EmitThrough(max_seen_ - slack_);
  }

  /// Emits everything still pending (stream end).
  void Flush() { EmitThrough(kMaxTimestamp); }

  /// Events dropped for arriving later than the slack allows.
  uint64_t late_dropped() const { return late_dropped_; }
  size_t pending() const { return pending_.size(); }

 private:
  void EmitThrough(Timestamp bound) {
    while (!pending_.empty() && pending_.begin()->first <= bound) {
      emitted_through_ = pending_.begin()->first;
      sink_(pending_.begin()->second);
      pending_.erase(pending_.begin());
    }
  }

  Duration slack_;
  Sink sink_;
  std::multimap<Timestamp, EventPtr> pending_;
  Timestamp max_seen_ = kMinTimestamp;
  Timestamp emitted_through_ = kMinTimestamp;
  uint64_t late_dropped_ = 0;
};

}  // namespace zstream

#endif  // ZSTREAM_EXEC_REORDER_H_
