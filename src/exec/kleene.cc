// KSEQ: Kleene-closure evaluation (Algorithm 4, Figure 6).
//
// KSEQ is trinary: a start operand fixes the left boundary, an end
// operand fixes the right boundary, and closure matches are collected
// from the middle (Kleene) class's leaf buffer between them.
//
//   * unspecified count (* / +): one maximal group per (start, end) pair;
//     '+' requires at least one closure event, '*' allows zero.
//   * count = n: a size-n sliding window over the qualifying closure
//     events; one result per window position per (start, end) pair.
//
// When the closure starts the pattern the start operand is virtual
// (group events only bounded by the window). When the closure *ends*
// the pattern there is no end trigger; each new closure event acts as
// the end point (groups grow incrementally — a documented deviation, as
// Algorithm 4 requires an end class).
//
// Candidate (start, end, mid) combinations are probed through aliasing
// views (BaseView / MidQualifies): no record is materialized until a
// group survives the window and group predicates.
#include "exec/operators.h"

#include "expr/analysis.h"

namespace zstream {

KSeqNode::KSeqNode(const Pattern* pattern, OperatorNode* start,
                   LeafNode* closure, OperatorNode* end,
                   MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kKSeq, tracker),
      start_(start),
      closure_(closure),
      end_(end),
      base_slots_(static_cast<size_t>(pattern->num_classes())) {
  const EventClass& kc =
      pattern->classes[static_cast<size_t>(closure->class_idx())];
  kind_ = kc.kleene;
  count_ = kc.kleene_count;
  if (start != nullptr) children_.push_back(start);
  children_.push_back(closure);
  if (end != nullptr) children_.push_back(end);
}

// Splits the attached predicates into:
//   * per-mid: reference the closure class without aggregates — filter
//     each closure event individually;
//   * group: contain aggregates over the closure class — evaluated on
//     the assembled group;
//   * base: do not touch the closure class — evaluated once per
//     (start, end) pair.
void KSeqNode::SplitPreds() {
  preds_split_ = true;
  const int kc = closure_->class_idx();
  for (const AttachedPred& p : preds_) {
    const bool touches_mid =
        std::find(p.classes.begin(), p.classes.end(), kc) != p.classes.end();
    if (!touches_mid) {
      base_preds_.push_back(p);
    } else if (p.has_aggregate) {
      group_preds_.push_back(p);
    } else {
      per_mid_preds_.push_back(p);
    }
  }
}

// Aliasing view of the (start, end) base pair in base_slots_; end wins
// ties (the operands cover disjoint classes, so none occur). Kept in its
// own slot vector so MidQualifies can bind closure events while the
// base stays live.
EvalInput KSeqNode::BaseView(const RecordRef* sr, const RecordRef& er) {
  const int n = er.num_slots;
  for (int i = 0; i < n; ++i) {
    const Event* raw = er.slots[i] != nullptr
                           ? er.slots[i].get()
                           : (sr != nullptr ? sr->slots[i].get() : nullptr);
    base_slots_[static_cast<size_t>(i)] = EventPtr(EventPtr(), raw);
  }
  EvalInput in;
  in.slots = base_slots_.data();
  in.num_slots = n;
  in.group = nullptr;
  in.group_class = group_class_;
  return in;
}

bool KSeqNode::MidQualifies(const EventPtr& m, const EvalInput& base) {
  if (per_mid_preds_.empty()) return true;
  // `base` views base_slots_; bind the closure slot in place, probe,
  // unbind. No copies.
  const size_t kc = static_cast<size_t>(closure_->class_idx());
  base_slots_[kc] = EventPtr(EventPtr(), m.get());
  bool ok = true;
  for (const AttachedPred& p : per_mid_preds_) {
    if (!EvalOnePred(p, base)) {
      ok = false;
      break;
    }
  }
  base_slots_[kc] = nullptr;
  return ok;
}

void KSeqNode::EmitOne(const RecordRef* sr, const RecordRef& er,
                       EventGroup group) {
  const Timestamp group_start =
      group.empty() ? er.start_ts : group.front()->timestamp();
  const Timestamp start_ts = sr != nullptr ? sr->start_ts : group_start;
  const Timestamp end_ts = er.end_ts;
  if (end_ts - start_ts > window_) return;
  // Group predicates run on an aliasing view before materialization.
  if (!group_preds_.empty()) {
    EvalInput view =
        sr != nullptr ? MergedView(er, *sr) : er.ToEvalInput(group_class_);
    view.group = &group;
    view.group_class = group_class_;
    for (const AttachedPred& p : group_preds_) {
      if (!EvalOnePred(p, view)) return;
    }
  }
  if (sink_ != nullptr && !sink_->NeedsPayload()) {
    sink_->OnMatch(start_ts, end_ts, nullptr, 0, nullptr);
    ++records_emitted_;
    return;
  }
  const int n = er.num_slots;
  for (int i = 0; i < n; ++i) {
    emit_slots_[static_cast<size_t>(i)] =
        er.slots[i] != nullptr
            ? er.slots[i]
            : (sr != nullptr ? sr->slots[i] : EventPtr());
  }
  const EventGroupPtr gp = std::make_shared<EventGroup>(std::move(group));
  if (sink_ != nullptr) {
    sink_->OnMatch(start_ts, end_ts, emit_slots_.data(), n, &gp);
  } else {
    output_.AppendSlots(start_ts, end_ts, emit_slots_.data(), n, gp);
  }
  ++records_emitted_;
}

// Collects qualifying closure events in (lo, hi) and emits the group(s)
// for the (sr, er) pair.
void KSeqNode::EmitGroups(const RecordRef* sr, const RecordRef& er,
                          Timestamp lo, Timestamp hi, Timestamp eat) {
  Buffer& mbuf = *closure_->output();
  const EvalInput base = BaseView(sr, er);
  const size_t kc = static_cast<size_t>(closure_->class_idx());

  qualifying_.clear();
  for (RecordId mid = mbuf.base_id(); mid < mbuf.end_id(); ++mid) {
    const RecordRef mr = mbuf.Get(mid);
    ++pairs_tried_;
    if (mr.end_ts >= hi) break;  // leaf buffer: sorted by timestamp
    if (mr.start_ts < eat || mr.start_ts <= lo) continue;
    const EventPtr& m = mr.slots[kc];
    if (!MidQualifies(m, base)) continue;
    qualifying_.push_back(m);
  }

  switch (kind_) {
    case KleeneKind::kStar:
      EmitOne(sr, er, std::move(qualifying_));
      break;
    case KleeneKind::kPlus:
      if (!qualifying_.empty()) EmitOne(sr, er, std::move(qualifying_));
      break;
    case KleeneKind::kCount: {
      const size_t cc = static_cast<size_t>(count_);
      if (qualifying_.size() < cc) break;
      for (size_t i = 0; i + cc <= qualifying_.size(); ++i) {
        EmitOne(sr, er,
                EventGroup(qualifying_.begin() + static_cast<long>(i),
                           qualifying_.begin() + static_cast<long>(i + cc)));
      }
      break;
    }
    case KleeneKind::kNone:
      break;
  }
}

void KSeqNode::AssembleWithEnd(Timestamp eat) {
  Buffer& ebuf = *end_->output();
  Buffer& mbuf = *closure_->output();
  mbuf.PurgeBefore(eat);
  Buffer* sbuf = start_ != nullptr ? start_->output() : nullptr;
  if (sbuf != nullptr) sbuf->PurgeBefore(eat);

  for (RecordId eid = ebuf.watermark(); eid < ebuf.end_id(); ++eid) {
    const RecordRef er = ebuf.Get(eid);
    if (er.start_ts < eat) continue;

    if (sbuf == nullptr) {
      // Closure at pattern start: bounded below by the window only.
      bool base_ok = true;
      if (!base_preds_.empty()) {
        const EvalInput base = BaseView(nullptr, er);
        for (const AttachedPred& p : base_preds_) {
          if (!EvalOnePred(p, base)) {
            base_ok = false;
            break;
          }
        }
      }
      if (base_ok) {
        EmitGroups(nullptr, er, er.end_ts - window_ - 1, er.start_ts, eat);
      }
      continue;
    }

    for (RecordId sid = sbuf->base_id(); sid < sbuf->end_id(); ++sid) {
      const RecordRef sr = sbuf->Get(sid);
      if (sr.end_ts >= er.start_ts) break;
      if (sr.start_ts < eat) continue;
      if (er.end_ts - sr.start_ts > window_) continue;
      bool base_ok = true;
      if (!base_preds_.empty()) {
        const EvalInput base = BaseView(&sr, er);
        for (const AttachedPred& p : base_preds_) {
          if (!EvalOnePred(p, base)) {
            base_ok = false;
            break;
          }
        }
      }
      if (!base_ok) continue;
      EmitGroups(&sr, er, sr.end_ts, er.start_ts, eat);
    }
  }

  ebuf.SetWatermark(ebuf.end_id());
  if (!end_->is_leaf()) {
    ebuf.Clear();
  } else {
    ebuf.PurgeBefore(eat);
  }
}

// Closure ends the pattern: every new closure event acts as an end
// trigger; the group is the qualifying run that finishes at that event.
void KSeqNode::AssembleAtPatternEnd(Timestamp eat) {
  Buffer& mbuf = *closure_->output();
  Buffer* sbuf = start_ != nullptr ? start_->output() : nullptr;
  if (sbuf != nullptr) sbuf->PurgeBefore(eat);
  const size_t kc = static_cast<size_t>(closure_->class_idx());

  for (RecordId mid = mbuf.watermark(); mid < mbuf.end_id(); ++mid) {
    const RecordRef mr = mbuf.Get(mid);
    if (mr.start_ts < eat) continue;

    const auto emit_for_start = [&](const RecordRef* sr) {
      const Timestamp lo = sr != nullptr ? sr->end_ts : kMinTimestamp;
      const EvalInput base = BaseView(sr, mr);
      for (const AttachedPred& p : base_preds_) {
        if (!EvalOnePred(p, base)) return;
      }
      // Walk back over qualifying closure events ending at mr.
      EventGroup group;
      const EventPtr& m_last = mr.slots[kc];
      if (!MidQualifies(m_last, base)) return;
      group.push_back(m_last);
      for (RecordId prev = mid; prev-- > mbuf.base_id();) {
        const RecordRef pr = mbuf.Get(prev);
        if (pr.start_ts <= lo || pr.start_ts < eat) break;
        if (kind_ == KleeneKind::kCount &&
            group.size() >= static_cast<size_t>(count_)) {
          break;
        }
        const EventPtr& m = pr.slots[kc];
        if (!MidQualifies(m, base)) continue;
        group.push_back(m);
      }
      std::reverse(group.begin(), group.end());
      if (kind_ == KleeneKind::kCount &&
          group.size() != static_cast<size_t>(count_)) {
        return;
      }
      EmitOne(sr, mr, std::move(group));
    };

    if (sbuf == nullptr) {
      emit_for_start(nullptr);
    } else {
      for (RecordId sid = sbuf->base_id(); sid < sbuf->end_id(); ++sid) {
        const RecordRef sr = sbuf->Get(sid);
        if (sr.end_ts >= mr.start_ts) break;
        if (sr.start_ts < eat) continue;
        if (mr.end_ts - sr.start_ts > window_) continue;
        emit_for_start(&sr);
      }
    }
  }
  mbuf.SetWatermark(mbuf.end_id());
}

void KSeqNode::Assemble(Timestamp eat) {
  if (!preds_split_) SplitPreds();
  if (end_ != nullptr) {
    AssembleWithEnd(eat);
  } else {
    AssembleAtPatternEnd(eat);
  }
}

}  // namespace zstream
