// KSEQ: Kleene-closure evaluation (Algorithm 4, Figure 6).
//
// KSEQ is trinary: a start operand fixes the left boundary, an end
// operand fixes the right boundary, and closure matches are collected
// from the middle (Kleene) class's leaf buffer between them.
//
//   * unspecified count (* / +): one maximal group per (start, end) pair;
//     '+' requires at least one closure event, '*' allows zero.
//   * count = n: a size-n sliding window over the qualifying closure
//     events; one result per window position per (start, end) pair.
//
// When the closure starts the pattern the start operand is virtual
// (group events only bounded by the window). When the closure *ends*
// the pattern there is no end trigger; each new closure event acts as
// the end point (groups grow incrementally — a documented deviation, as
// Algorithm 4 requires an end class).
#include "exec/operators.h"

#include "expr/analysis.h"

namespace zstream {

KSeqNode::KSeqNode(const Pattern* pattern, OperatorNode* start,
                   LeafNode* closure, OperatorNode* end,
                   MemoryTracker* tracker)
    : OperatorNode(pattern, PhysOp::kKSeq, tracker),
      start_(start),
      closure_(closure),
      end_(end) {
  const EventClass& kc =
      pattern->classes[static_cast<size_t>(closure->class_idx())];
  kind_ = kc.kleene;
  count_ = kc.kleene_count;
  if (start != nullptr) children_.push_back(start);
  children_.push_back(closure);
  if (end != nullptr) children_.push_back(end);
}

// Splits the attached predicates into:
//   * per-mid: reference the closure class without aggregates — filter
//     each closure event individually;
//   * group: contain aggregates over the closure class — evaluated on
//     the assembled group;
//   * base: do not touch the closure class — evaluated once per
//     (start, end) pair.
void KSeqNode::SplitPreds() {
  preds_split_ = true;
  const int kc = closure_->class_idx();
  for (const AttachedPred& p : preds_) {
    const bool touches_mid =
        std::find(p.classes.begin(), p.classes.end(), kc) != p.classes.end();
    if (!touches_mid) {
      base_preds_.push_back(p);
    } else if (p.has_aggregate) {
      group_preds_.push_back(p);
    } else {
      per_mid_preds_.push_back(p);
    }
  }
}

bool KSeqNode::MidQualifies(const EventPtr& m, const Record& base) {
  if (per_mid_preds_.empty()) return true;
  Record probe = base;
  probe.slots[static_cast<size_t>(closure_->class_idx())] = m;
  for (const AttachedPred& p : per_mid_preds_) {
    if (!EvalOnePred(p, probe)) return false;
  }
  return true;
}

void KSeqNode::EmitOne(const Record* sr, const Record& er,
                       EventGroup group) {
  Record out;
  const Timestamp group_start =
      group.empty() ? er.start_ts : group.front()->timestamp();
  out.start_ts = sr != nullptr ? sr->start_ts : group_start;
  out.end_ts = er.end_ts;
  if (out.end_ts - out.start_ts > window_) return;
  out.slots = er.slots;
  if (sr != nullptr) {
    for (size_t i = 0; i < out.slots.size(); ++i) {
      if (out.slots[i] == nullptr) out.slots[i] = sr->slots[i];
    }
  }
  out.group = std::make_shared<EventGroup>(std::move(group));
  for (const AttachedPred& p : group_preds_) {
    if (!EvalOnePred(p, out)) return;
  }
  output_.Append(std::move(out));
  ++records_emitted_;
}

// Collects qualifying closure events in (lo, hi) and emits the group(s)
// for the (sr, er) pair.
void KSeqNode::EmitGroups(const Record* sr, const Record& er, Timestamp lo,
                          Timestamp hi, Timestamp eat) {
  Buffer& mbuf = *closure_->output();
  Record base = er;
  if (sr != nullptr) {
    base = Record::Merge(*sr, er, sr->start_ts, er.end_ts);
  }

  EventGroup qualifying;
  for (RecordId mid = mbuf.base_id(); mid < mbuf.end_id(); ++mid) {
    const Record& mr = mbuf.Get(mid);
    ++pairs_tried_;
    if (mr.end_ts >= hi) break;  // leaf buffer: sorted by timestamp
    if (mr.start_ts < eat || mr.start_ts <= lo) continue;
    const EventPtr& m = mr.slots[static_cast<size_t>(closure_->class_idx())];
    if (!MidQualifies(m, base)) continue;
    qualifying.push_back(m);
  }

  switch (kind_) {
    case KleeneKind::kStar:
      EmitOne(sr, er, std::move(qualifying));
      break;
    case KleeneKind::kPlus:
      if (!qualifying.empty()) EmitOne(sr, er, std::move(qualifying));
      break;
    case KleeneKind::kCount: {
      const size_t cc = static_cast<size_t>(count_);
      if (qualifying.size() < cc) break;
      for (size_t i = 0; i + cc <= qualifying.size(); ++i) {
        EmitOne(sr, er,
                EventGroup(qualifying.begin() + static_cast<long>(i),
                           qualifying.begin() + static_cast<long>(i + cc)));
      }
      break;
    }
    case KleeneKind::kNone:
      break;
  }
}

void KSeqNode::AssembleWithEnd(Timestamp eat) {
  Buffer& ebuf = *end_->output();
  Buffer& mbuf = *closure_->output();
  mbuf.PurgeBefore(eat);
  Buffer* sbuf = start_ != nullptr ? start_->output() : nullptr;
  if (sbuf != nullptr) sbuf->PurgeBefore(eat);

  for (RecordId eid = ebuf.watermark(); eid < ebuf.end_id(); ++eid) {
    const Record& er = ebuf.Get(eid);
    if (er.start_ts < eat) continue;

    if (sbuf == nullptr) {
      // Closure at pattern start: bounded below by the window only.
      bool base_ok = true;
      for (const AttachedPred& p : base_preds_) {
        if (!EvalOnePred(p, er)) {
          base_ok = false;
          break;
        }
      }
      if (base_ok) {
        EmitGroups(nullptr, er, er.end_ts - window_ - 1, er.start_ts, eat);
      }
      continue;
    }

    for (RecordId sid = sbuf->base_id(); sid < sbuf->end_id(); ++sid) {
      const Record& sr = sbuf->Get(sid);
      if (sr.end_ts >= er.start_ts) break;
      if (sr.start_ts < eat) continue;
      if (er.end_ts - sr.start_ts > window_) continue;
      Record base = Record::Merge(sr, er, sr.start_ts, er.end_ts);
      bool base_ok = true;
      for (const AttachedPred& p : base_preds_) {
        if (!EvalOnePred(p, base)) {
          base_ok = false;
          break;
        }
      }
      if (!base_ok) continue;
      EmitGroups(&sr, er, sr.end_ts, er.start_ts, eat);
    }
  }

  ebuf.SetWatermark(ebuf.end_id());
  if (!end_->is_leaf()) {
    ebuf.Clear();
  } else {
    ebuf.PurgeBefore(eat);
  }
}

// Closure ends the pattern: every new closure event acts as an end
// trigger; the group is the qualifying run that finishes at that event.
void KSeqNode::AssembleAtPatternEnd(Timestamp eat) {
  Buffer& mbuf = *closure_->output();
  Buffer* sbuf = start_ != nullptr ? start_->output() : nullptr;
  if (sbuf != nullptr) sbuf->PurgeBefore(eat);

  for (RecordId mid = mbuf.watermark(); mid < mbuf.end_id(); ++mid) {
    const Record& mr = mbuf.Get(mid);
    if (mr.start_ts < eat) continue;

    const auto emit_for_start = [&](const Record* sr) {
      const Timestamp lo = sr != nullptr ? sr->end_ts : kMinTimestamp;
      Record base = mr;
      if (sr != nullptr) {
        base = Record::Merge(*sr, mr, sr->start_ts, mr.end_ts);
      }
      for (const AttachedPred& p : base_preds_) {
        if (!EvalOnePred(p, base)) return;
      }
      // Walk back over qualifying closure events ending at mr.
      EventGroup group;
      const EventPtr& m_last =
          mr.slots[static_cast<size_t>(closure_->class_idx())];
      if (!MidQualifies(m_last, base)) return;
      group.push_back(m_last);
      for (RecordId prev = mid; prev-- > mbuf.base_id();) {
        const Record& pr = mbuf.Get(prev);
        if (pr.start_ts <= lo || pr.start_ts < eat) break;
        if (kind_ == KleeneKind::kCount &&
            group.size() >= static_cast<size_t>(count_)) {
          break;
        }
        const EventPtr& m =
            pr.slots[static_cast<size_t>(closure_->class_idx())];
        if (!MidQualifies(m, base)) continue;
        group.push_back(m);
      }
      std::reverse(group.begin(), group.end());
      if (kind_ == KleeneKind::kCount &&
          group.size() != static_cast<size_t>(count_)) {
        return;
      }
      EmitOne(sr, mr, std::move(group));
    };

    if (sbuf == nullptr) {
      emit_for_start(nullptr);
    } else {
      for (RecordId sid = sbuf->base_id(); sid < sbuf->end_id(); ++sid) {
        const Record& sr = sbuf->Get(sid);
        if (sr.end_ts >= mr.start_ts) break;
        if (sr.start_ts < eat) continue;
        if (mr.end_ts - sr.start_ts > window_) continue;
        emit_for_start(&sr);
      }
    }
  }
  mbuf.SetWatermark(mbuf.end_id());
}

void KSeqNode::Assemble(Timestamp eat) {
  if (!preds_split_) SplitPreds();
  if (end_ != nullptr) {
    AssembleWithEnd(eat);
  } else {
    AssembleAtPatternEnd(eat);
  }
}

}  // namespace zstream
