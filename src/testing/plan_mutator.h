// Seeded plan corruption for verifying the verifier.
//
// MutatePlan applies one randomly chosen, deliberately illegal edit to a
// valid (pattern, plan) pair — dropping or duplicating a leaf, breaking
// sequence order, flipping an NSEQ, retargeting a NEG filter, zeroing
// the window, truncating the partition spec, ... Every mutation kind is
// chosen to violate at least one verifier invariant, so the fuzzer's
// --mutate-plans mode can assert verify::VerifyPlan rejects (almost) all
// of them; a surviving mutant is a hole in the invariant set.
#ifndef ZSTREAM_TESTING_PLAN_MUTATOR_H_
#define ZSTREAM_TESTING_PLAN_MUTATOR_H_

#include <optional>
#include <string>

#include "plan/pattern.h"
#include "plan/physical_plan.h"

namespace zstream::testing {

/// One corrupted case: the (possibly edited) pattern, the (possibly
/// edited) plan, and which edit was made.
struct PlanMutation {
  Pattern pattern;
  PhysicalPlan plan;
  std::string description;
};

/// Applies one seeded corruption. Returns nullopt only when no mutation
/// kind applies (cannot happen for plans with >= 2 classes).
std::optional<PlanMutation> MutatePlan(const Pattern& pattern,
                                       const PhysicalPlan& plan,
                                       uint64_t seed);

}  // namespace zstream::testing

#endif  // ZSTREAM_TESTING_PLAN_MUTATOR_H_
