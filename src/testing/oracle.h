// Brute-force semantic oracle for differential testing.
//
// The oracle evaluates a logical Pattern over a finished event trace by
// direct enumeration of event combinations, implementing the paper's
// Section 3 composite-event semantics from the definitions — SEQ strict
// temporal ordering, CONJ unordered, DISJ one-branch binding, negation
// as non-occurrence strictly between its enclosing classes, Kleene
// closure per Algorithm 4, WITHIN as an inclusive bound on the match
// span — while sharing no code with exec/ or nfa/. Its only
// dependencies are the logical layers (plan/, expr/, event/), so a bug
// in the batch-iterator engine, the NFA baseline, the sharded runtime
// or the wire path cannot also hide here.
//
// Matches are reported as canonical keys (`MatchSignature` format:
// "c@ts|" per bound positive class plus "g{ts,...}" for the Kleene
// group), sorted as a multiset — the representation the differential
// driver uses to compare every execution path.
#ifndef ZSTREAM_TESTING_ORACLE_H_
#define ZSTREAM_TESTING_ORACLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "plan/pattern.h"

namespace zstream::testing {

/// Canonical key of one match: "c@ts|" for every bound positive
/// (non-negated) class c in index order, then "g{ts,ts,...}" when a
/// Kleene group is present. Negated-class bindings are excluded: plans
/// differ in whether they record the negator (NSEQ does, NEG-filter
/// does not), and the negator is never part of the composite event.
std::string MatchSignature(const std::vector<EventPtr>& slots,
                           const std::vector<bool>& negated_class,
                           const std::vector<EventPtr>* group);

/// \brief The brute-force reference matcher.
class Oracle {
 public:
  /// Fails with NotSupported for the shapes whose engine semantics are
  /// explicitly documented deviations from Algorithm 4 (a Kleene class
  /// ending its sequence or standing alone, where the engine grows
  /// groups incrementally per closure event) or that the engines do not
  /// evaluate as closures (a Kleene class directly under CONJ/DISJ).
  static Result<std::unique_ptr<Oracle>> Create(PatternPtr pattern);

  /// Evaluates the pattern over the full trace (order-independent) and
  /// returns the sorted multiset of canonical match keys.
  std::vector<std::string> Run(const std::vector<EventPtr>& events) const;

  const Pattern& pattern() const { return *pattern_; }

 private:
  explicit Oracle(PatternPtr pattern);

  /// One (partial) assignment of events to positive classes plus the
  /// deferred negation / Kleene obligations collected while walking the
  /// structure tree.
  struct Binding;

  bool AdmitsLeaf(int cls, const EventPtr& event) const;
  std::vector<Binding> EvalNode(const PatternNodePtr& node) const;
  std::vector<Binding> EvalSeq(const PatternNodePtr& node) const;
  void Finalize(const Binding& binding, std::vector<std::string>* keys) const;
  bool IsNegatedByWindow(Binding& binding, int cls, Timestamp lo,
                         Timestamp hi) const;
  bool ClosureEventQualifies(Binding& binding, const EventPtr& event) const;
  bool BasePredsPass(const Binding& binding,
                     const std::vector<EventPtr>* group) const;
  bool PartitionHolds(const Binding& binding,
                      const std::vector<EventPtr>* group) const;

  PatternPtr pattern_;
  std::vector<bool> negated_class_;
  int kleene_class_ = -1;

  /// Per multi-predicate metadata (parallel to pattern_->multi_predicates).
  struct PredInfo {
    std::vector<int> classes;
    bool aggregate = false;
    bool touches_neg = false;
    bool touches_kleene = false;
  };
  std::vector<PredInfo> preds_;

  /// Scratch state for one Run() (events admitted per class, in
  /// timestamp order). Mutable: Run is logically const.
  mutable std::vector<std::vector<EventPtr>> admitted_;
};

}  // namespace zstream::testing

#endif  // ZSTREAM_TESTING_ORACLE_H_
