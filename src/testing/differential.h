// Differential driver: one (pattern, trace) case through every
// execution path, asserting canonical match-set equality against the
// brute-force Oracle.
//
// Paths (each compares the sorted multiset of MatchSignature keys):
//   oracle            reference (testing/oracle.h)
//   tree:<strategy>   Engine/PartitionedEngine via ZStream::Compile under
//                     kOptimal (batch 64, batch 1, hash indexes off,
//                     partition detection off) plus kLeftDeep,
//                     kRightDeep and kNegationTop when applicable
//   nfa               SASE-style baseline (match counts only: the NFA
//                     reports counts, not match objects)
//   runtime:<N>       sharded StreamRuntime, 1 and 4 shards
//   net               loopback TCP server + client over the runtime
//
// Out-of-order traces run with reorder slack equal to the trace's
// measured disorder, so every path observes the same timestamp-ordered
// stream and the Oracle's order-independent semantics apply.
#ifndef ZSTREAM_TESTING_DIFFERENTIAL_H_
#define ZSTREAM_TESTING_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "exec/engine.h"
#include "testing/oracle.h"
#include "testing/pattern_gen.h"
#include "testing/trace_gen.h"

namespace zstream::testing {

struct DifferentialOptions {
  bool tree = true;
  bool nfa = true;
  bool runtime = true;
  bool net = true;
  /// Restrict to one named path (e.g. "tree:right-deep", "runtime:4");
  /// empty runs everything enabled above.
  std::string only_path;
};

/// One disagreement between a path and the oracle.
struct Divergence {
  std::string path;
  size_t expected = 0;  // oracle match count
  size_t got = 0;
  std::string detail;   // first differing canonical keys
};

struct CaseReport {
  /// False when any path diverged or an unexpected error occurred.
  bool ok = true;
  /// Paths actually executed (inapplicable strategies are skipped).
  int paths_run = 0;
  size_t oracle_matches = 0;
  std::vector<Divergence> divergences;
  /// Non-empty on infrastructure failure (analyze/compile/socket error).
  std::string error;
};

/// Canonical key for an engine-produced match: positive slots plus the
/// Kleene group, negator slots stripped (plans differ in recording them).
std::string EngineMatchKey(const Pattern& pattern, const Match& match);

/// CREATE STREAM statement for `name` with `schema`'s fields.
std::string CreateStreamDdl(const std::string& name, const Schema& schema);

class DifferentialDriver {
 public:
  explicit DifferentialDriver(DifferentialOptions options = {});

  CaseReport RunCase(const GeneratedPattern& pattern,
                     const GeneratedTrace& trace) const;

  /// Greedy event-drop minimization of a failing trace: returns the
  /// smallest subtrace (arrival order preserved) on which RunCase still
  /// reports the failure. `options_` should be narrowed to the diverging
  /// path first — minimization re-runs the case per candidate.
  std::vector<EventPtr> MinimizeTrace(const GeneratedPattern& pattern,
                                      std::vector<EventPtr> events) const;

 private:
  DifferentialOptions options_;
};

}  // namespace zstream::testing

#endif  // ZSTREAM_TESTING_DIFFERENTIAL_H_
