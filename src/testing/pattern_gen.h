// Seeded random pattern-query generation for differential fuzzing.
//
// PatternGen emits bounded-depth pattern queries over generated schemas
// through the public PatternBuilder, so every case is expressed as
// canonical query text (ToQueryString) and exercises the parser,
// rewriter and analyzer exactly like a user query. The generated space
// covers flat sequences, disjunction/conjunction structures, sequences
// with embedded CONJ/DISJ subtrees, negation (including merged negated
// disjunctions `!(B|C)`), the three Kleene-closure kinds, equality-join
// chains (sometimes full-coverage, triggering hash partitioning),
// cross-class comparisons with arithmetic, and aggregates over the
// closure group — while staying inside the shapes the engines and the
// Oracle both support (markers only between plain classes inside a
// sequence, no closure ending its sequence).
#ifndef ZSTREAM_TESTING_PATTERN_GEN_H_
#define ZSTREAM_TESTING_PATTERN_GEN_H_

#include <string>

#include "api/pattern_builder.h"
#include "common/random.h"
#include "common/schema.h"
#include "common/timestamp.h"

namespace zstream::testing {

struct PatternGenOptions {
  int max_classes = 5;     // >= 2
  int max_depth = 2;       // 1: flat sequences only; 2: one nesting level
  int sym_alphabet = 4;    // class-discriminator domain ("s0".."sK-1")
  int key_domain = 3;      // equality-join key domain ("k0".."kK-1")
  Duration min_window = 8;
  Duration max_window = 30;

  double p_structure = 0.45;  // DISJ / CONJ / embedded-subtree shapes
  double p_negation = 0.3;    // per sequence with >= 3 classes
  double p_neg_disj = 0.25;   // negation becomes a merged !(B|C)
  double p_kleene = 0.3;      // per sequence (not combined with negation
                              // unless the sequence is long enough)
  double p_sym_pred = 0.85;   // per class: sym = 's<i>' discriminator
  double p_extra_leaf = 0.2;  // per class: extra val/price literal bound
  double p_eq_join = 0.45;    // equality-join chain on grp
  double p_partition = 0.5;   // ... covering every class (partitionable)
  double p_cmp_pred = 0.7;    // 1-2 cross-class comparisons
  double p_neg_pred = 0.35;   // a comparison touches the negated class
  double p_kleene_pred = 0.4; // a per-event comparison touches the closure
  double p_agg_pred = 0.35;   // aggregate over the closure group
  double p_return = 0.5;      // explicit RETURN clause
};

/// \brief One generated case: the typed builder plus its canonical text
/// and the schema it was generated against.
struct GeneratedPattern {
  explicit GeneratedPattern(PatternBuilder b) : builder(std::move(b)) {}

  PatternBuilder builder;
  std::string text;  // builder.ToQueryString()
  SchemaPtr schema;
  Duration window = 0;
  int num_classes = 0;
  bool has_negation = false;
  bool has_kleene = false;
  bool is_flat_sequence = false;
};

/// \brief Deterministic generator: the same seed and options produce the
/// same query sequence on every platform.
class PatternGen {
 public:
  explicit PatternGen(uint64_t seed, PatternGenOptions options = {});

  /// Next random query. Always analyzable against its schema (shapes the
  /// analyzer rejects are regenerated internally).
  GeneratedPattern Next();

  /// The schema queries are generated against: the four core fields
  /// (sym STRING, grp STRING, val INT, price DOUBLE) plus 0-2 extra
  /// unused fields whose presence varies with the seed.
  const SchemaPtr& schema() const { return schema_; }

 private:
  GeneratedPattern Generate();

  Random rng_;
  PatternGenOptions options_;
  SchemaPtr schema_;
};

}  // namespace zstream::testing

#endif  // ZSTREAM_TESTING_PATTERN_GEN_H_
