#include "testing/plan_mutator.h"

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"

namespace zstream::testing {

namespace {

void Preorder(const PhysNodePtr& node, std::vector<const PhysNode*>* out) {
  if (node == nullptr) return;
  out->push_back(node.get());
  for (const auto& c : node->children) Preorder(c, out);
}

// Path-copying replacement: the subtree at `target` (by identity) is
// replaced with repl(target); untouched subtrees stay shared.
PhysNodePtr Replace(const PhysNodePtr& node, const PhysNode* target,
                    const std::function<PhysNodePtr(const PhysNode*)>& repl) {
  if (node == nullptr) return nullptr;
  if (node.get() == target) return repl(target);
  bool changed = false;
  std::vector<PhysNodePtr> kids;
  kids.reserve(node->children.size());
  for (const auto& c : node->children) {
    PhysNodePtr nc = Replace(c, target, repl);
    changed = changed || nc.get() != c.get();
    kids.push_back(std::move(nc));
  }
  if (!changed) return node;
  auto n = std::make_shared<PhysNode>(*node);
  n->children = std::move(kids);
  return n;
}

bool IsBinary(PhysOp op) {
  return op == PhysOp::kSeq || op == PhysOp::kConj || op == PhysOp::kDisj ||
         op == PhysOp::kNSeq;
}

// One applicable corruption: a target node plus the edit to apply.
struct Candidate {
  std::string description;
  const PhysNode* target;
  std::function<PhysNodePtr(const PhysNode*)> repl;
  // Pattern-side edits leave the tree alone.
  std::function<void(Pattern*)> edit_pattern;
};

}  // namespace

std::optional<PlanMutation> MutatePlan(const Pattern& pattern,
                                       const PhysicalPlan& plan,
                                       uint64_t seed) {
  const int n = pattern.num_classes();
  std::vector<const PhysNode*> nodes;
  Preorder(plan.root, &nodes);

  std::vector<Candidate> candidates;
  const auto add = [&](std::string desc, const PhysNode* target,
                       std::function<PhysNodePtr(const PhysNode*)> repl) {
    candidates.push_back(
        Candidate{std::move(desc), target, std::move(repl), nullptr});
  };

  int first_positive = -1;
  int first_non_kleene = -1;
  for (int c = 0; c < n; ++c) {
    const EventClass& ec = pattern.classes[static_cast<size_t>(c)];
    if (first_positive < 0 && !ec.negated) first_positive = c;
    if (first_non_kleene < 0 && !ec.is_kleene()) first_non_kleene = c;
  }

  for (const PhysNode* node : nodes) {
    const std::string at = std::string(PhysOpName(node->op));
    if (IsBinary(node->op)) {
      add("drop-left-operand of " + at, node, [](const PhysNode* t) {
        return t->children[1];
      });
      if (node->op == PhysOp::kSeq) {
        add("swap-seq-operands", node, [](const PhysNode* t) {
          auto c = std::make_shared<PhysNode>(*t);
          std::swap(c->children[0], c->children[1]);
          return c;
        });
        add("seq-to-conj", node, [](const PhysNode* t) {
          auto c = std::make_shared<PhysNode>(*t);
          c->op = PhysOp::kConj;
          return c;
        });
      }
      if (node->op == PhysOp::kConj || node->op == PhysOp::kDisj) {
        add(at + "-to-seq", node, [](const PhysNode* t) {
          auto c = std::make_shared<PhysNode>(*t);
          c->op = PhysOp::kSeq;
          return c;
        });
      }
      if (node->op == PhysOp::kNSeq) {
        add("flip-nseq-sides", node, [](const PhysNode* t) {
          auto c = std::make_shared<PhysNode>(*t);
          c->neg_left = !c->neg_left;
          return c;
        });
        add("nseq-to-plain-seq", node, [](const PhysNode* t) {
          auto c = std::make_shared<PhysNode>(*t);
          c->op = PhysOp::kSeq;
          return c;
        });
      }
    }
    if (node->is_leaf()) {
      add("duplicate-leaf", node, [](const PhysNode* t) {
        return PhysNode::Seq(PhysNode::Leaf(t->class_idx),
                             PhysNode::Leaf(t->class_idx));
      });
      add("leaf-class-out-of-range", node, [n](const PhysNode*) {
        return PhysNode::Leaf(n + 3);
      });
    }
    if (node->op == PhysOp::kKSeq && first_non_kleene >= 0) {
      add("kseq-middle-non-kleene", node, [first_non_kleene](const PhysNode* t) {
        auto c = std::make_shared<PhysNode>(*t);
        c->children[1] = PhysNode::Leaf(first_non_kleene);
        return c;
      });
    }
    if (node->op == PhysOp::kNegFilter) {
      add("drop-negfilter", node, [](const PhysNode* t) {
        return t->children[0];
      });
      if (first_positive >= 0) {
        add("negfilter-positive-class", node,
            [first_positive](const PhysNode* t) {
              auto c = std::make_shared<PhysNode>(*t);
              c->class_idx = first_positive;
              return c;
            });
      }
    }
  }

  // Pattern-side corruptions.
  candidates.push_back(Candidate{
      "window-zero", nullptr, nullptr,
      [](Pattern* p) { p->window = 0; }});
  if (pattern.partition.has_value() && !pattern.partition->field_indices.empty()) {
    candidates.push_back(Candidate{
        "partition-index-out-of-range", nullptr, nullptr, [](Pattern* p) {
          p->partition->field_indices.back() = 99;
        }});
  }

  if (candidates.empty()) return std::nullopt;
  Random rng(seed);
  const Candidate& chosen =
      candidates[static_cast<size_t>(rng.Uniform(candidates.size()))];

  PlanMutation out{pattern, plan, chosen.description};
  if (chosen.edit_pattern != nullptr) {
    chosen.edit_pattern(&out.pattern);
  } else {
    out.plan.root = Replace(plan.root, chosen.target, chosen.repl);
  }
  return out;
}

}  // namespace zstream::testing
