#include "testing/pattern_gen.h"

#include <algorithm>
#include <vector>

#include "query/analyzer.h"

namespace zstream::testing {

namespace {

// Prefix+number concatenation without `const char* + std::string&&`,
// which trips GCC 12's -Wrestrict false positive (PR105651).
std::string Cat(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

std::string AliasName(int i) { return Cat("E", i); }
std::string SymLit(int i) { return Cat("s", i); }

}  // namespace

PatternGen::PatternGen(uint64_t seed, PatternGenOptions options)
    : rng_(seed), options_(options) {
  std::vector<Field> fields = {{"sym", ValueType::kString},
                               {"grp", ValueType::kString},
                               {"val", ValueType::kInt64},
                               {"price", ValueType::kDouble}};
  // Seed-dependent extra fields: unused by predicates, they vary the
  // schema the wire path serializes and the projection returns.
  if (rng_.Bernoulli(0.4)) fields.push_back({"x0", ValueType::kInt64});
  if (rng_.Bernoulli(0.3)) fields.push_back({"x1", ValueType::kDouble});
  schema_ = Schema::Make(std::move(fields));
}

GeneratedPattern PatternGen::Next() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    GeneratedPattern g = Generate();
    if (AnalyzeQuery(g.text, schema_).ok()) return g;
  }
  // Degenerate fallback (never expected): a plain two-class sequence.
  PatternBuilder b(Seq(AliasName(0), AliasName(1)));
  b.Within(options_.min_window);
  b.Where(Attr(AliasName(0), "sym") == SymLit(0));
  b.Where(Attr(AliasName(1), "sym") == SymLit(1));
  GeneratedPattern g(b);
  g.text = b.ToQueryString();
  g.schema = schema_;
  g.window = options_.min_window;
  g.num_classes = 2;
  g.is_flat_sequence = true;
  return g;
}

GeneratedPattern PatternGen::Generate() {
  const int n = static_cast<int>(
      rng_.UniformRange(2, std::max(2, options_.max_classes)));
  std::vector<std::string> aliases;
  for (int i = 0; i < n; ++i) aliases.push_back(AliasName(i));
  // Aliases of merged negated-disjunction branches (extra classes).
  std::vector<std::string> branch_aliases;

  // -- structure ------------------------------------------------------
  int neg_pos = -1;     // index into aliases
  int kleene_pos = -1;
  KleeneKind kleene_kind = KleeneKind::kNone;
  int kleene_count = 0;
  bool neg_is_disj = false;
  bool flat_sequence = false;

  const auto cls = [&](int i) { return PatternExpr(aliases[size_t(i)]); };
  const auto mark = [&](int i) -> PatternExpr {
    if (i == kleene_pos) {
      switch (kleene_kind) {
        case KleeneKind::kStar:
          return cls(i).Star();
        case KleeneKind::kPlus:
          return cls(i).Plus();
        case KleeneKind::kCount:
          return cls(i).Times(kleene_count);
        case KleeneKind::kNone:
          break;
      }
    }
    if (i == neg_pos) {
      if (neg_is_disj) {
        std::string b0 = Cat("N", i);
        std::string b1 = b0;
        b0 += 'a';
        b1 += 'b';
        branch_aliases = {b0, b1};
        return Neg(Or(PatternExpr(b0), PatternExpr(b1)));
      }
      return Neg(cls(i));
    }
    return cls(i);
  };

  const int shape =
      rng_.Bernoulli(options_.p_structure) && options_.max_depth >= 2
          ? static_cast<int>(rng_.Uniform(3))  // 0=disj 1=conj 2=embedded
          : -1;                                // flat sequence

  PatternExpr pattern("E0");  // overwritten below
  if (shape == -1) {
    flat_sequence = true;
    // Optional markers: one Kleene closure (never last) and/or one
    // enclosed negation, never adjacent to each other.
    if (n >= 2 && rng_.Bernoulli(options_.p_kleene)) {
      // Closure in the middle (both neighbors present), or starting the
      // two-class root form B*;C — the deterministic shapes (see
      // Oracle's CheckSupported).
      kleene_pos = n == 2 ? 0
                          : 1 + static_cast<int>(
                                    rng_.Uniform(uint64_t(n - 2)));
      const double kind = rng_.NextDouble();
      kleene_kind = kind < 0.4   ? KleeneKind::kStar
                    : kind < 0.7 ? KleeneKind::kPlus
                                 : KleeneKind::kCount;
      if (kleene_kind == KleeneKind::kCount) {
        kleene_count = static_cast<int>(rng_.UniformRange(1, 3));
      }
    }
    if (n >= 3 && rng_.Bernoulli(options_.p_negation)) {
      std::vector<int> spots;
      for (int i = 1; i + 1 < n; ++i) {
        if (std::abs(i - kleene_pos) > 1) spots.push_back(i);
      }
      if (!spots.empty()) {
        neg_pos = spots[rng_.Uniform(spots.size())];
        neg_is_disj = rng_.Bernoulli(options_.p_neg_disj);
      }
    }
    std::vector<PatternExpr> parts;
    for (int i = 0; i < n; ++i) parts.push_back(mark(i));
    std::vector<ParseNodePtr> kids;
    for (const PatternExpr& part : parts) kids.push_back(part.node());
    pattern = PatternExpr(ParseNode::Make(ParseOp::kSeq, std::move(kids)));
  } else if (shape == 0 || shape == 1) {
    // DISJ/CONJ of 2 parts, each a class or a sub-sequence. A long
    // enough sub-sequence may carry an enclosed negation.
    const int split = static_cast<int>(rng_.UniformRange(1, n - 1));
    const auto part = [&](int lo, int hi) -> PatternExpr {
      if (hi - lo == 1) return cls(lo);
      if (hi - lo >= 3 && neg_pos < 0 &&
          rng_.Bernoulli(options_.p_negation)) {
        neg_pos = lo + 1 + static_cast<int>(rng_.Uniform(uint64_t(hi - lo - 2)));
        neg_is_disj = rng_.Bernoulli(options_.p_neg_disj);
      }
      std::vector<ParseNodePtr> kids;
      for (int i = lo; i < hi; ++i) kids.push_back(mark(i).node());
      return PatternExpr(ParseNode::Make(ParseOp::kSeq, std::move(kids)));
    };
    PatternExpr left = part(0, split);
    PatternExpr right = part(split, n);
    pattern = shape == 0 ? Or(left, right) : And(left, right);
  } else {
    // Sequence with one embedded DISJ/CONJ subtree of two classes; no
    // markers (their neighbors must be plain classes).
    const int sub = n >= 3 ? 1 + static_cast<int>(rng_.Uniform(uint64_t(n - 2)))
                           : 0;
    std::vector<ParseNodePtr> kids;
    for (int i = 0; i < n; ++i) {
      if (i == sub && i + 1 < n) {
        PatternExpr inner = rng_.Bernoulli(0.5)
                                ? Or(cls(i), cls(i + 1))
                                : And(cls(i), cls(i + 1));
        kids.push_back(inner.node());
        ++i;
      } else {
        kids.push_back(cls(i).node());
      }
    }
    pattern = kids.size() == 1
                  ? PatternExpr(kids[0])
                  : PatternExpr(ParseNode::Make(ParseOp::kSeq, std::move(kids)));
  }

  PatternBuilder builder(pattern);
  builder.Within(
      rng_.UniformRange(options_.min_window, options_.max_window));

  // -- per-class predicates -------------------------------------------
  const auto leaf_preds = [&](const std::string& alias) {
    if (rng_.Bernoulli(options_.p_sym_pred)) {
      builder.Where(Attr(alias, "sym") ==
                    SymLit(static_cast<int>(
                        rng_.Uniform(uint64_t(options_.sym_alphabet)))));
    }
    if (rng_.Bernoulli(options_.p_extra_leaf)) {
      if (rng_.Bernoulli(0.5)) {
        builder.Where(Attr(alias, "val") >
                      ExprBuilder(rng_.UniformRange(0, 3)));
      } else {
        builder.Where(Attr(alias, "price") <=
                      ExprBuilder(static_cast<double>(
                          rng_.UniformRange(40, 95)) / 10.0));
      }
    }
  };
  for (int i = 0; i < n; ++i) {
    if (i == neg_pos && neg_is_disj) continue;  // branches instead
    leaf_preds(aliases[size_t(i)]);
  }
  for (const std::string& ba : branch_aliases) {
    // Branch discriminators: each branch admits one sym.
    builder.Where(Attr(ba, "sym") ==
                  SymLit(static_cast<int>(
                      rng_.Uniform(uint64_t(options_.sym_alphabet)))));
  }

  // -- cross-class predicates -----------------------------------------
  std::vector<int> plain;  // neither negated nor closure
  for (int i = 0; i < n; ++i) {
    if (i != neg_pos && i != kleene_pos) plain.push_back(i);
  }

  if (plain.size() >= 2 && rng_.Bernoulli(options_.p_eq_join)) {
    if (rng_.Bernoulli(options_.p_partition) && !neg_is_disj) {
      // Full-coverage chain (including markers): partitionable.
      for (int i = 1; i < n; ++i) {
        builder.Where(Attr(aliases[size_t(i - 1)], "grp") ==
                      Attr(aliases[size_t(i)], "grp"));
      }
    } else {
      const size_t a = rng_.Uniform(plain.size());
      size_t b = rng_.Uniform(plain.size());
      if (b == a) b = (a + 1) % plain.size();
      builder.Where(Attr(aliases[size_t(plain[a])], "grp") ==
                    Attr(aliases[size_t(plain[b])], "grp"));
    }
  }

  const auto cmp = [&](const std::string& a, const std::string& b) {
    const bool on_val = rng_.Bernoulli(0.5);
    ExprBuilder lhs = Attr(a, on_val ? "val" : "price");
    ExprBuilder rhs = Attr(b, on_val ? "val" : "price");
    if (!on_val && rng_.Bernoulli(0.3)) {
      rhs = ExprBuilder(static_cast<double>(rng_.UniformRange(8, 15)) /
                        10.0) *
            rhs;
    }
    switch (rng_.Uniform(4)) {
      case 0:
        builder.Where(lhs < rhs);
        break;
      case 1:
        builder.Where(lhs <= rhs);
        break;
      case 2:
        builder.Where(lhs > rhs);
        break;
      default:
        builder.Where(lhs >= rhs);
        break;
    }
  };

  if (plain.size() >= 2 && rng_.Bernoulli(options_.p_cmp_pred)) {
    const size_t a = rng_.Uniform(plain.size());
    size_t b = rng_.Uniform(plain.size());
    if (b == a) b = (a + 1) % plain.size();
    cmp(aliases[size_t(plain[a])], aliases[size_t(plain[b])]);
  }
  if (neg_pos >= 0 && !neg_is_disj && !plain.empty() &&
      rng_.Bernoulli(options_.p_neg_pred)) {
    // Negation predicate: constrains which negators kill a match. The
    // partner is a neighbor, keeping pushed-down NSEQ plans applicable
    // (a far partner forces the NEG-filter fallback — also exercised).
    const int partner = rng_.Bernoulli(0.7)
                            ? (rng_.Bernoulli(0.5) ? neg_pos - 1 : neg_pos + 1)
                            : plain[rng_.Uniform(plain.size())];
    if (partner != neg_pos && partner >= 0 && partner < n &&
        partner != kleene_pos) {
      cmp(aliases[size_t(neg_pos)], aliases[size_t(partner)]);
    }
  }
  if (kleene_pos >= 0 && rng_.Bernoulli(options_.p_kleene_pred)) {
    // Per-event closure predicates must stay inside the KSEQ's operand
    // coverage (engine restriction): partner = an immediate neighbor.
    const int partner =
        rng_.Bernoulli(0.5) ? kleene_pos - 1 : kleene_pos + 1;
    if (partner >= 0 && partner < n && partner != neg_pos) {
      cmp(aliases[size_t(kleene_pos)], aliases[size_t(partner)]);
    }
  }
  if (kleene_pos >= 0 && rng_.Bernoulli(options_.p_agg_pred)) {
    const std::string& ka = aliases[size_t(kleene_pos)];
    switch (rng_.Uniform(4)) {
      case 0:
        builder.Where(Sum(ka, "val") >=
                      ExprBuilder(rng_.UniformRange(2, 10)));
        break;
      case 1:
        builder.Where(Avg(ka, "price") <
                      ExprBuilder(static_cast<double>(
                          rng_.UniformRange(30, 80)) / 10.0));
        break;
      case 2:
        builder.Where(Count(ka) >= ExprBuilder(rng_.UniformRange(1, 3)));
        break;
      default:
        builder.Where(Max(ka, "val") <=
                      ExprBuilder(rng_.UniformRange(4, 8)));
        break;
    }
  }

  // -- RETURN ---------------------------------------------------------
  if (rng_.Bernoulli(options_.p_return) && !plain.empty()) {
    builder.Return(Ref(aliases[size_t(plain[0])]));
    if (plain.size() >= 2 && rng_.Bernoulli(0.5)) {
      builder.Return(Attr(aliases[size_t(plain[1])], "price"));
    }
    if (kleene_pos >= 0) {
      builder.Return(Sum(aliases[size_t(kleene_pos)], "val"));
    }
  }

  GeneratedPattern g(builder);
  g.text = builder.ToQueryString();
  g.schema = schema_;
  g.num_classes = n + static_cast<int>(branch_aliases.empty() ? 0 : 1);
  g.has_negation = neg_pos >= 0;
  g.has_kleene = kleene_pos >= 0;
  g.is_flat_sequence = flat_sequence;
  {
    auto parsed = builder.Build();
    if (parsed.ok()) g.window = parsed->window;
  }
  return g;
}

}  // namespace zstream::testing
