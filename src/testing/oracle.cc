#include "testing/oracle.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "expr/analysis.h"

namespace zstream::testing {

namespace {

bool IsMarkerClass(const Pattern& p, const PatternNodePtr& node) {
  if (!node->is_class()) return false;
  const EventClass& ec = p.classes[static_cast<size_t>(node->class_idx)];
  return ec.negated || ec.is_kleene();
}

/// Structure rules beyond Pattern::Validate that the oracle (and the
/// engines, see kleene.cc's header) require: Kleene as a direct Seq
/// child with a right neighbor, no adjacent negation/Kleene markers.
Status CheckSupported(const Pattern& p, const PatternNodePtr& node,
                      bool is_root) {
  if (node->is_class()) {
    const EventClass& ec = p.classes[static_cast<size_t>(node->class_idx)];
    if (ec.is_kleene() && is_root) {
      return Status::NotSupported(
          "oracle: bare Kleene closure pattern (engine grows groups "
          "incrementally, a documented Algorithm 4 deviation)");
    }
    return Status::OK();
  }
  for (const PatternNodePtr& child : node->children) {
    if (child->is_class()) {
      const EventClass& ec =
          p.classes[static_cast<size_t>(child->class_idx)];
      if (ec.is_kleene() && node->op != PatternOp::kSeq) {
        return Status::NotSupported(
            "oracle: Kleene closure directly under CONJ/DISJ");
      }
    }
    ZS_RETURN_IF_ERROR(CheckSupported(p, child, /*is_root=*/false));
  }
  if (node->op == PatternOp::kSeq) {
    if (IsMarkerClass(p, node->children.back()) &&
        p.classes[static_cast<size_t>(node->children.back()->class_idx)]
            .is_kleene()) {
      return Status::NotSupported(
          "oracle: Kleene closure ending a sequence (engine grows "
          "groups incrementally, a documented Algorithm 4 deviation)");
    }
    if (IsMarkerClass(p, node->children.front()) &&
        p.classes[static_cast<size_t>(node->children.front()->class_idx)]
            .is_kleene() &&
        !(is_root && node->children.size() == 2)) {
      // Closure starting a longer sequence: the engine's group
      // maximality then depends on when later trigger classes purge the
      // closure buffer relative to the final match end — only the
      // two-operand root form (e.g. B*;C) is deterministic.
      return Status::NotSupported(
          "oracle: Kleene closure starting a sequence with further "
          "operands (purge-order-dependent group maximality)");
    }
    for (size_t i = 0; i + 1 < node->children.size(); ++i) {
      if (IsMarkerClass(p, node->children[i]) &&
          IsMarkerClass(p, node->children[i + 1])) {
        return Status::NotSupported(
            "oracle: adjacent negation/Kleene markers in a sequence");
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::string MatchSignature(const std::vector<EventPtr>& slots,
                           const std::vector<bool>& negated_class,
                           const std::vector<EventPtr>* group) {
  std::ostringstream os;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == nullptr) continue;
    if (i < negated_class.size() && negated_class[i]) continue;
    os << i << "@" << slots[i]->timestamp() << "|";
  }
  if (group != nullptr) {
    os << "g{";
    for (const EventPtr& e : *group) os << e->timestamp() << ",";
    os << "}";
  }
  return os.str();
}

/// One (partial) assignment produced while walking the structure tree.
struct Oracle::Binding {
  std::vector<EventPtr> slots;
  int num_bound = 0;
  Timestamp min_ts = kMaxTimestamp;
  Timestamp max_ts = kMinTimestamp;

  /// Deferred negation obligation: no admitted negator of class `cls`
  /// strictly inside (lo, hi) may pass its predicates.
  struct NegWindow {
    int cls;
    Timestamp lo, hi;
  };
  std::vector<NegWindow> negs;

  /// Kleene boundaries (at most one closure class per pattern).
  /// Closure events lie strictly inside (k_lo, k_hi); when the closure
  /// starts its sequence, k_win_lo additionally bounds them to the
  /// window before the right neighbor (KSeqNode's virtual start).
  bool has_kleene = false;
  Timestamp k_lo = kMinTimestamp;
  Timestamp k_hi = kMaxTimestamp;
  Timestamp k_win_lo = kMinTimestamp;
};

Oracle::Oracle(PatternPtr pattern) : pattern_(std::move(pattern)) {
  const Pattern& p = *pattern_;
  negated_class_.assign(static_cast<size_t>(p.num_classes()), false);
  for (int nc : p.NegatedClasses()) {
    negated_class_[static_cast<size_t>(nc)] = true;
  }
  kleene_class_ = p.KleeneClass();
  for (const ExprPtr& pred : p.multi_predicates) {
    PredInfo info;
    const std::set<int> classes = ReferencedClasses(pred);
    info.classes.assign(classes.begin(), classes.end());
    info.aggregate = ContainsAggregate(pred);
    for (int c : info.classes) {
      if (negated_class_[static_cast<size_t>(c)]) info.touches_neg = true;
      if (c == kleene_class_) info.touches_kleene = true;
    }
    preds_.push_back(std::move(info));
  }
}

Result<std::unique_ptr<Oracle>> Oracle::Create(PatternPtr pattern) {
  if (pattern == nullptr || pattern->root == nullptr) {
    return Status::InvalidArgument("oracle: null pattern");
  }
  ZS_RETURN_IF_ERROR(pattern->Validate());
  ZS_RETURN_IF_ERROR(
      CheckSupported(*pattern, pattern->root, /*is_root=*/true));
  return std::unique_ptr<Oracle>(new Oracle(std::move(pattern)));
}

bool Oracle::AdmitsLeaf(int cls, const EventPtr& event) const {
  const Pattern& p = *pattern_;
  const EventClass& ec = p.classes[static_cast<size_t>(cls)];
  std::vector<EventPtr> slots(static_cast<size_t>(p.num_classes()));
  slots[static_cast<size_t>(cls)] = event;
  EvalInput in;
  in.slots = slots.data();
  in.num_slots = static_cast<int>(slots.size());
  for (const ExprPtr& pred : ec.leaf_predicates) {
    if (!pred->EvalPredicate(in)) return false;
  }
  if (!ec.neg_branches.empty()) {
    // A merged negated disjunction admits through any branch whose
    // predicate group passes in full.
    for (const NegBranch& branch : ec.neg_branches) {
      bool all = true;
      for (const ExprPtr& pred : branch.predicates) {
        if (!pred->EvalPredicate(in)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }
  return true;
}

std::vector<Oracle::Binding> Oracle::EvalNode(
    const PatternNodePtr& node) const {
  const Pattern& p = *pattern_;
  const size_t n = static_cast<size_t>(p.num_classes());
  switch (node->op) {
    case PatternOp::kClass: {
      // Negation/Kleene markers are consumed by EvalSeq before it
      // recurses; a marker reaching here was rejected by Create.
      std::vector<Binding> out;
      const int cls = node->class_idx;
      for (const EventPtr& e : admitted_[static_cast<size_t>(cls)]) {
        Binding b;
        b.slots.assign(n, nullptr);
        b.slots[static_cast<size_t>(cls)] = e;
        b.num_bound = 1;
        b.min_ts = b.max_ts = e->timestamp();
        out.push_back(std::move(b));
      }
      return out;
    }
    case PatternOp::kSeq:
      return EvalSeq(node);
    case PatternOp::kConj: {
      std::vector<Binding> acc = EvalNode(node->children[0]);
      for (size_t i = 1; i < node->children.size(); ++i) {
        const std::vector<Binding> next = EvalNode(node->children[i]);
        std::vector<Binding> merged;
        for (const Binding& a : acc) {
          for (const Binding& b : next) {
            Binding m = a;
            for (size_t s = 0; s < n; ++s) {
              if (b.slots[s] != nullptr) m.slots[s] = b.slots[s];
            }
            m.num_bound += b.num_bound;
            m.min_ts = std::min(a.min_ts, b.min_ts);
            m.max_ts = std::max(a.max_ts, b.max_ts);
            m.negs.insert(m.negs.end(), b.negs.begin(), b.negs.end());
            if (b.has_kleene) {
              m.has_kleene = true;
              m.k_lo = b.k_lo;
              m.k_hi = b.k_hi;
              m.k_win_lo = b.k_win_lo;
            }
            merged.push_back(std::move(m));
          }
        }
        acc = std::move(merged);
      }
      return acc;
    }
    case PatternOp::kDisj: {
      std::vector<Binding> out;
      for (const PatternNodePtr& child : node->children) {
        std::vector<Binding> branch = EvalNode(child);
        out.insert(out.end(), std::make_move_iterator(branch.begin()),
                   std::make_move_iterator(branch.end()));
      }
      return out;
    }
  }
  return {};
}

std::vector<Oracle::Binding> Oracle::EvalSeq(
    const PatternNodePtr& node) const {
  const Pattern& p = *pattern_;
  const size_t n = static_cast<size_t>(p.num_classes());

  Binding empty;
  empty.slots.assign(n, nullptr);
  std::vector<Binding> acc;
  acc.push_back(std::move(empty));

  std::vector<int> pending;  // marker classes awaiting their right bound
  for (const PatternNodePtr& child : node->children) {
    if (IsMarkerClass(p, child)) {
      pending.push_back(child->class_idx);
      continue;
    }
    const std::vector<Binding> next = EvalNode(child);
    std::vector<Binding> merged;
    for (const Binding& a : acc) {
      for (const Binding& b : next) {
        // SEQ strict temporal ordering: everything already bound must
        // end before everything in the next operand starts.
        if (a.num_bound > 0 && b.min_ts <= a.max_ts) continue;
        Binding m = a;
        for (size_t s = 0; s < n; ++s) {
          if (b.slots[s] != nullptr) m.slots[s] = b.slots[s];
        }
        m.num_bound += b.num_bound;
        m.min_ts = std::min(a.min_ts, b.min_ts);
        m.max_ts = std::max(a.max_ts, b.max_ts);
        m.negs.insert(m.negs.end(), b.negs.begin(), b.negs.end());
        if (b.has_kleene) {
          m.has_kleene = true;
          m.k_lo = b.k_lo;
          m.k_hi = b.k_hi;
          m.k_win_lo = b.k_win_lo;
        }
        for (int marker : pending) {
          const EventClass& mc = p.classes[static_cast<size_t>(marker)];
          if (mc.negated) {
            // Validated: negation never starts a sequence.
            m.negs.push_back(
                Binding::NegWindow{marker, a.max_ts, b.min_ts});
          } else {
            m.has_kleene = true;
            m.k_lo = a.num_bound > 0 ? a.max_ts : kMinTimestamp;
            m.k_hi = b.min_ts;
            // Closure starting its sequence: KSeqNode bounds the group
            // to the window before its right neighbor's end.
            m.k_win_lo =
                a.num_bound > 0 ? kMinTimestamp : b.max_ts - p.window;
          }
        }
        merged.push_back(std::move(m));
      }
    }
    acc = std::move(merged);
    pending.clear();
  }
  return acc;
}

bool Oracle::IsNegatedByWindow(Binding& binding, int cls, Timestamp lo,
                               Timestamp hi) const {
  const Pattern& p = *pattern_;
  const size_t nc = static_cast<size_t>(cls);
  const int key_field =
      p.partition.has_value() ? p.partition->field_indices[nc] : -1;
  Value key;
  if (key_field >= 0) {
    // Partitioned execution only sees same-key negators; find the key
    // from any bound slot.
    for (size_t i = 0; i < binding.slots.size(); ++i) {
      if (binding.slots[i] != nullptr) {
        key = binding.slots[i]->value(p.partition->field_indices[i]);
        break;
      }
    }
  }
  for (const EventPtr& b : admitted_[nc]) {
    const Timestamp ts = b->timestamp();
    if (ts <= lo) continue;
    if (ts >= hi) break;  // admitted_ is timestamp-sorted
    if (key_field >= 0 && !(b->value(key_field) == key)) continue;
    binding.slots[nc] = b;
    EvalInput in;
    in.slots = binding.slots.data();
    in.num_slots = static_cast<int>(binding.slots.size());
    bool kills = true;
    for (size_t pi = 0; pi < preds_.size(); ++pi) {
      const PredInfo& info = preds_[pi];
      if (std::find(info.classes.begin(), info.classes.end(), cls) ==
          info.classes.end()) {
        continue;
      }
      bool all_bound = true;
      for (int c : info.classes) {
        if (binding.slots[static_cast<size_t>(c)] == nullptr) {
          all_bound = false;  // unbound (disjunction): vacuous pass
        }
      }
      if (!all_bound) continue;
      if (!p.multi_predicates[pi]->EvalPredicate(in)) {
        kills = false;
        break;
      }
    }
    binding.slots[nc] = nullptr;
    if (kills) return true;
  }
  binding.slots[nc] = nullptr;
  return false;
}

bool Oracle::ClosureEventQualifies(Binding& binding,
                                   const EventPtr& event) const {
  const Pattern& p = *pattern_;
  const size_t kc = static_cast<size_t>(kleene_class_);
  binding.slots[kc] = event;
  EvalInput in;
  in.slots = binding.slots.data();
  in.num_slots = static_cast<int>(binding.slots.size());
  bool ok = true;
  for (size_t pi = 0; pi < preds_.size(); ++pi) {
    const PredInfo& info = preds_[pi];
    if (!info.touches_kleene || info.aggregate || info.touches_neg) {
      continue;
    }
    bool all_bound = true;
    for (int c : info.classes) {
      if (binding.slots[static_cast<size_t>(c)] == nullptr) {
        all_bound = false;
      }
    }
    if (!all_bound) continue;
    if (!p.multi_predicates[pi]->EvalPredicate(in)) {
      ok = false;
      break;
    }
  }
  binding.slots[kc] = nullptr;
  return ok;
}

bool Oracle::BasePredsPass(const Binding& binding,
                           const std::vector<EventPtr>* group) const {
  const Pattern& p = *pattern_;
  EvalInput in;
  in.slots = binding.slots.data();
  in.num_slots = static_cast<int>(binding.slots.size());
  in.group = group;
  in.group_class = kleene_class_;
  for (size_t pi = 0; pi < preds_.size(); ++pi) {
    const PredInfo& info = preds_[pi];
    if (info.touches_neg) continue;  // consumed by the negator check
    if (info.touches_kleene && !info.aggregate) continue;  // per event
    bool all_bound = true;
    for (int c : info.classes) {
      const bool bound =
          binding.slots[static_cast<size_t>(c)] != nullptr ||
          (c == kleene_class_ && group != nullptr);
      if (!bound) all_bound = false;
    }
    if (!all_bound) continue;  // unbound branch: vacuous pass
    if (!p.multi_predicates[pi]->EvalPredicate(in)) return false;
  }
  return true;
}

bool Oracle::PartitionHolds(const Binding& binding,
                            const std::vector<EventPtr>* group) const {
  const Pattern& p = *pattern_;
  if (!p.partition.has_value()) return true;
  bool have_key = false;
  Value key;
  for (size_t i = 0; i < binding.slots.size(); ++i) {
    if (binding.slots[i] == nullptr || negated_class_[i]) continue;
    const Value v = binding.slots[i]->value(p.partition->field_indices[i]);
    if (!have_key) {
      key = v;
      have_key = true;
    } else if (!(v == key)) {
      return false;
    }
  }
  if (group != nullptr && kleene_class_ >= 0) {
    const int kf =
        p.partition->field_indices[static_cast<size_t>(kleene_class_)];
    for (const EventPtr& e : *group) {
      const Value v = e->value(kf);
      if (!have_key) {
        key = v;
        have_key = true;
      } else if (!(v == key)) {
        return false;
      }
    }
  }
  return true;
}

void Oracle::Finalize(const Binding& binding,
                      std::vector<std::string>* keys) const {
  const Pattern& p = *pattern_;
  Binding b = binding;  // mutable scratch (negator / closure probing)

  if (!PartitionHolds(b, nullptr)) return;

  for (const Binding::NegWindow& nw : b.negs) {
    if (IsNegatedByWindow(b, nw.cls, nw.lo, nw.hi)) return;
  }

  if (b.has_kleene) {
    const size_t kc = static_cast<size_t>(kleene_class_);
    const EventClass& kcl = p.classes[kc];
    const int key_field =
        p.partition.has_value() ? p.partition->field_indices[kc] : -1;
    Value key;
    if (key_field >= 0) {
      for (size_t i = 0; i < b.slots.size(); ++i) {
        if (b.slots[i] != nullptr && !negated_class_[i]) {
          key = b.slots[i]->value(p.partition->field_indices[i]);
          break;
        }
      }
    }
    std::vector<EventPtr> qualifying;
    for (const EventPtr& m : admitted_[kc]) {
      const Timestamp ts = m->timestamp();
      if (ts <= b.k_lo || ts < b.k_win_lo) continue;
      if (ts >= b.k_hi) break;
      if (key_field >= 0 && !(m->value(key_field) == key)) continue;
      if (!ClosureEventQualifies(b, m)) continue;
      qualifying.push_back(m);
    }
    const auto emit_group = [&](std::vector<EventPtr> g) {
      const Timestamp lo =
          g.empty() ? b.min_ts
                    : std::min(b.min_ts, g.front()->timestamp());
      const Timestamp hi =
          g.empty() ? b.max_ts : std::max(b.max_ts, g.back()->timestamp());
      if (hi - lo > p.window) return;
      if (!BasePredsPass(b, &g)) return;
      keys->push_back(MatchSignature(b.slots, negated_class_, &g));
    };
    switch (kcl.kleene) {
      case KleeneKind::kStar:
        emit_group(std::move(qualifying));
        break;
      case KleeneKind::kPlus:
        if (!qualifying.empty()) emit_group(std::move(qualifying));
        break;
      case KleeneKind::kCount: {
        const size_t cc = static_cast<size_t>(kcl.kleene_count);
        for (size_t i = 0; i + cc <= qualifying.size(); ++i) {
          emit_group(std::vector<EventPtr>(
              qualifying.begin() + static_cast<long>(i),
              qualifying.begin() + static_cast<long>(i + cc)));
        }
        break;
      }
      case KleeneKind::kNone:
        break;
    }
    return;
  }

  if (b.max_ts - b.min_ts > p.window) return;
  if (!BasePredsPass(b, nullptr)) return;
  keys->push_back(MatchSignature(b.slots, negated_class_, nullptr));
}

std::vector<std::string> Oracle::Run(
    const std::vector<EventPtr>& events) const {
  const Pattern& p = *pattern_;
  const size_t n = static_cast<size_t>(p.num_classes());

  // Admission in timestamp order (stable on ties, matching the arrival
  // order a reordering stage preserves).
  std::vector<EventPtr> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const EventPtr& a, const EventPtr& b) {
                     return a->timestamp() < b->timestamp();
                   });
  admitted_.assign(n, {});
  for (const EventPtr& e : sorted) {
    for (size_t c = 0; c < n; ++c) {
      if (AdmitsLeaf(static_cast<int>(c), e)) admitted_[c].push_back(e);
    }
  }

  std::vector<std::string> keys;
  for (const Binding& b : EvalNode(p.root)) {
    // Pre-filter on the positive span: every final span containing the
    // binding is at least this wide.
    if (b.num_bound > 0 && b.max_ts - b.min_ts > p.window) continue;
    Finalize(b, &keys);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace zstream::testing
