#include "testing/differential.h"

#include <algorithm>
#include <sstream>

#include "api/zstream.h"
#include "net/client.h"
#include "net/server.h"
#include "nfa/nfa_engine.h"
#include "query/analyzer.h"
#include "runtime/stream_runtime.h"

namespace zstream::testing {

namespace {

std::vector<bool> NegatedMask(const Pattern& pattern) {
  std::vector<bool> mask(static_cast<size_t>(pattern.num_classes()), false);
  for (int nc : pattern.NegatedClasses()) mask[static_cast<size_t>(nc)] = true;
  return mask;
}

/// First keys present in one sorted multiset but not the other.
std::string FirstDiff(const std::vector<std::string>& expected,
                      const std::vector<std::string>& got) {
  std::vector<std::string> missing, extra;
  std::set_difference(expected.begin(), expected.end(), got.begin(),
                      got.end(), std::back_inserter(missing));
  std::set_difference(got.begin(), got.end(), expected.begin(),
                      expected.end(), std::back_inserter(extra));
  std::ostringstream os;
  if (!missing.empty()) os << "missing[" << missing[0] << "]";
  if (!extra.empty()) {
    if (!missing.empty()) os << " ";
    os << "extra[" << extra[0] << "]";
  }
  return os.str();
}

std::vector<EventPtr> TimestampSorted(const std::vector<EventPtr>& events) {
  std::vector<EventPtr> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const EventPtr& a, const EventPtr& b) {
                     return a->timestamp() < b->timestamp();
                   });
  return sorted;
}

}  // namespace

std::string EngineMatchKey(const Pattern& pattern, const Match& match) {
  const std::vector<bool> mask = NegatedMask(pattern);
  std::vector<EventPtr> group;
  if (match.group != nullptr) group = *match.group;
  return MatchSignature(match.slots, mask,
                        match.group != nullptr ? &group : nullptr);
}

std::string CreateStreamDdl(const std::string& name, const Schema& schema) {
  std::ostringstream os;
  os << "CREATE STREAM " << name << " (";
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) os << ", ";
    const Field& f = schema.field(i);
    os << f.name << " ";
    switch (f.type) {
      case ValueType::kInt64:
        os << "INT";
        break;
      case ValueType::kDouble:
        os << "DOUBLE";
        break;
      case ValueType::kString:
        os << "STRING";
        break;
      case ValueType::kBool:
        os << "BOOL";
        break;
      case ValueType::kNull:
        os << "STRING";
        break;
    }
  }
  os << ")";
  return os.str();
}

DifferentialDriver::DifferentialDriver(DifferentialOptions options)
    : options_(std::move(options)) {}

CaseReport DifferentialDriver::RunCase(const GeneratedPattern& gp,
                                       const GeneratedTrace& trace) const {
  CaseReport report;

  auto analyzed = AnalyzeQuery(gp.text, gp.schema);
  if (!analyzed.ok()) {
    report.ok = false;
    report.error = "analyze: " + analyzed.status().ToString();
    return report;
  }
  const PatternPtr pattern = *analyzed;
  const std::vector<bool> mask = NegatedMask(*pattern);

  auto oracle = Oracle::Create(pattern);
  if (!oracle.ok()) {
    report.ok = false;
    report.error = "oracle: " + oracle.status().ToString();
    return report;
  }
  const std::vector<std::string> expected = (*oracle)->Run(trace.events);
  report.oracle_matches = expected.size();

  const auto want = [&](const std::string& path) {
    return options_.only_path.empty() || options_.only_path == path;
  };
  const auto compare = [&](const std::string& path,
                           std::vector<std::string> keys) {
    ++report.paths_run;
    std::sort(keys.begin(), keys.end());
    if (keys != expected) {
      report.ok = false;
      report.divergences.push_back(Divergence{
          path, expected.size(), keys.size(), FirstDiff(expected, keys)});
    }
  };
  const auto fail = [&](const std::string& path, const Status& status) {
    report.ok = false;
    report.divergences.push_back(
        Divergence{path, expected.size(), 0, status.ToString()});
  };

  // -- tree engine under every applicable strategy --------------------
  struct TreeVariant {
    std::string name;
    CompileOptions options;
  };
  std::vector<TreeVariant> variants;
  {
    CompileOptions base;
    base.engine.reorder_slack = trace.max_disorder;
    TreeVariant opt{"tree:optimal", base};
    variants.push_back(opt);
    TreeVariant b1{"tree:optimal/batch1", base};
    b1.options.engine.batch_size = 1;
    variants.push_back(b1);
    TreeVariant nohash{"tree:optimal/nohash", base};
    nohash.options.engine.use_hash_indexes = false;
    variants.push_back(nohash);
    TreeVariant nopart{"tree:optimal/nopartition", base};
    nopart.options.analyzer.detect_partition = false;
    variants.push_back(nopart);
    TreeVariant ld{"tree:left-deep", base};
    ld.options.strategy = PlanStrategy::kLeftDeep;
    variants.push_back(ld);
    TreeVariant rd{"tree:right-deep", base};
    rd.options.strategy = PlanStrategy::kRightDeep;
    variants.push_back(rd);
    if (!pattern->NegatedClasses().empty()) {
      TreeVariant nt{"tree:negation-top", base};
      nt.options.strategy = PlanStrategy::kNegationTop;
      variants.push_back(nt);
    }
  }
  if (options_.tree) {
    for (const TreeVariant& v : variants) {
      if (!want(v.name)) continue;
      ZStream zs(gp.schema);
      auto query = zs.Compile("default", gp.text, v.options);
      if (!query.ok()) {
        // Inapplicable shapes (e.g. non-local negation predicates under
        // a fixed NSEQ shape) are skipped, not failures.
        if (query.status().code() == StatusCode::kNotSupported) continue;
        fail(v.name, query.status());
        continue;
      }
      std::vector<std::string> keys;
      (*query)->SetMatchCallback([&](Match&& m) {
        keys.push_back(EngineMatchKey(*pattern, m));
      });
      for (const EventPtr& e : trace.events) (*query)->Push(e);
      (*query)->Finish();
      compare(v.name, std::move(keys));
    }
  }

  // -- NFA baseline (counts only) -------------------------------------
  if (options_.nfa && want("nfa")) {
    auto nfa = NfaEngine::Create(pattern);
    if (nfa.ok()) {
      for (const EventPtr& e : TimestampSorted(trace.events)) {
        (*nfa)->Push(e);
      }
      (*nfa)->Finish();
      ++report.paths_run;
      if ((*nfa)->num_matches() != expected.size()) {
        report.ok = false;
        report.divergences.push_back(
            Divergence{"nfa", expected.size(),
                       static_cast<size_t>((*nfa)->num_matches()),
                       "match count differs (NFA reports counts only)"});
      }
    } else if (nfa.status().code() != StatusCode::kNotSupported) {
      fail("nfa", nfa.status());
    }
  }

  // -- sharded runtime -------------------------------------------------
  if (options_.runtime) {
    for (int shards : {1, 4}) {
      const std::string path = "runtime:" + std::to_string(shards);
      if (!want(path)) continue;
      runtime::RuntimeOptions ro;
      ro.num_shards = shards;
      ro.reorder_slack = trace.max_disorder;
      auto rt = runtime::StreamRuntime::Create(ro);
      if (!rt.ok()) {
        fail(path, rt.status());
        continue;
      }
      auto sid = (*rt)->AddStream("s", gp.schema);
      if (!sid.ok()) {
        fail(path, sid.status());
        continue;
      }
      runtime::CollectingMatchSink sink;
      runtime::QueryOptions qo;
      qo.sink = &sink;
      auto qid = (*rt)->RegisterQuery(*sid, gp.text, CompileOptions{}, qo);
      if (!qid.ok()) {
        // Engine-unsupported shapes are inapplicable, not divergences.
        if (qid.status().code() != StatusCode::kNotSupported) {
          fail(path, qid.status());
        }
        (*rt)->Stop();
        continue;
      }
      for (const EventPtr& e : trace.events) (*rt)->Ingest(*sid, e);
      Status flushed = (*rt)->Flush();
      if (!flushed.ok()) {
        fail(path, flushed);
        continue;
      }
      std::vector<std::string> keys;
      for (const runtime::RuntimeMatch& m : sink.Take()) {
        keys.push_back(EngineMatchKey(*pattern, m.match));
      }
      (*rt)->Stop();
      compare(path, std::move(keys));
    }
  }

  // -- loopback net server ---------------------------------------------
  if (options_.net && want("net")) {
    const std::string path = "net";
    ZStream zs;
    auto ddl = zs.Execute(CreateStreamDdl("s", *gp.schema));
    if (!ddl.ok()) {
      fail(path, ddl.status());
      return report;
    }
    auto create_query = zs.Execute("CREATE QUERY q ON s AS " + gp.text);
    if (!create_query.ok()) {
      if (create_query.status().code() != StatusCode::kNotSupported) {
        fail(path, create_query.status());
      }
      return report;
    }
    runtime::RuntimeOptions ro;
    ro.num_shards = 2;
    ro.reorder_slack = trace.max_disorder;
    auto server = net::Server::Create(&zs, ro);
    if (!server.ok()) {
      fail(path, server.status());
      return report;
    }
    Status started = (*server)->Start();
    if (!started.ok()) {
      fail(path, started);
      return report;
    }
    auto client = net::Client::Connect("127.0.0.1", (*server)->port());
    if (!client.ok()) {
      fail(path, client.status());
      (*server)->Stop();
      return report;
    }
    auto subscribed = (*client)->Subscribe("q");
    Status step = subscribed.ok() ? Status::OK() : subscribed.status();
    if (step.ok()) {
      auto ack = (*client)->Ingest("s", trace.events);
      if (!ack.ok()) step = ack.status();
    }
    if (step.ok()) {
      auto flush = (*client)->Flush();
      if (!flush.ok()) step = flush.status();
    }
    if (!step.ok()) {
      fail(path, step);
      (*client)->Close();
      (*server)->Stop();
      return report;
    }
    std::vector<std::string> keys;
    for (const net::NetMatch& m : (*client)->TakeMatches()) {
      keys.push_back(EngineMatchKey(*pattern, m.match));
    }
    (*client)->Close();
    (*server)->Stop();
    compare(path, std::move(keys));
  }

  return report;
}

std::vector<EventPtr> DifferentialDriver::MinimizeTrace(
    const GeneratedPattern& pattern, std::vector<EventPtr> events) const {
  const auto still_fails = [&](const std::vector<EventPtr>& candidate) {
    GeneratedTrace t;
    t.events = candidate;
    Timestamp max_seen = kMinTimestamp;
    for (const EventPtr& e : candidate) {
      if (max_seen != kMinTimestamp && e->timestamp() < max_seen) {
        t.max_disorder =
            std::max(t.max_disorder, max_seen - e->timestamp());
      }
      max_seen = std::max(max_seen, e->timestamp());
    }
    return !RunCase(pattern, t).ok;
  };
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t i = 0; i < events.size(); ++i) {
      std::vector<EventPtr> candidate = events;
      candidate.erase(candidate.begin() + static_cast<long>(i));
      if (still_fails(candidate)) {
        events = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return events;
}

}  // namespace zstream::testing
