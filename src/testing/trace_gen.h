// Seeded random event-trace generation for differential fuzzing.
//
// TraceGen produces traces against a generated schema with tunable
// event rates (sym distribution, optionally skewed), key skew over the
// equality-join domain, timestamp gaps including ties (gap 0) and
// boundary-exact spans (an event placed exactly `window` after an
// earlier one, probing the WITHIN <= boundary), and bounded
// out-of-order arrival (a local shuffle whose observed displacement is
// reported so engines can be configured with exactly enough reorder
// slack).
#ifndef ZSTREAM_TESTING_TRACE_GEN_H_
#define ZSTREAM_TESTING_TRACE_GEN_H_

#include <vector>

#include "common/random.h"
#include "common/schema.h"
#include "common/timestamp.h"
#include "event/event.h"

namespace zstream::testing {

struct TraceGenOptions {
  int num_events = 64;
  int sym_alphabet = 4;
  int key_domain = 3;
  /// Probability mass of sym 0 (the rest uniform): rate skew.
  double sym_skew = 0.4;
  /// Probability mass of key 0 (the rest uniform): key skew.
  double key_skew = 0.5;
  /// Timestamp gaps are uniform in [0, max_gap]; 0 produces ties.
  int max_gap = 3;
  double p_tie = 0.1;       // force gap 0
  double p_boundary = 0.1;  // place the event exactly `window` after a
                            // random earlier event
  Duration window = 20;     // the pattern window boundary to probe
  int64_t val_range = 8;    // val uniform in [0, val_range]
  /// Maximum out-of-order displacement, in positions. 0 keeps the trace
  /// in timestamp order.
  int shuffle_span = 0;
};

struct GeneratedTrace {
  std::vector<EventPtr> events;  // arrival order
  /// Max observed lateness (max over events of max-ts-seen-before minus
  /// own ts); a reorder slack >= this reconstructs timestamp order
  /// without drops.
  Duration max_disorder = 0;
};

class TraceGen {
 public:
  TraceGen(uint64_t seed, SchemaPtr schema, TraceGenOptions options = {});

  GeneratedTrace Next();

 private:
  Random rng_;
  SchemaPtr schema_;
  TraceGenOptions options_;
};

}  // namespace zstream::testing

#endif  // ZSTREAM_TESTING_TRACE_GEN_H_
