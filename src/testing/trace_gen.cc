#include "testing/trace_gen.h"

#include <algorithm>
#include <string>

namespace zstream::testing {

namespace {
// See pattern_gen.cc: avoids GCC 12's -Wrestrict false positive.
std::string Cat(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}
}  // namespace

TraceGen::TraceGen(uint64_t seed, SchemaPtr schema, TraceGenOptions options)
    : rng_(seed), schema_(std::move(schema)), options_(options) {}

GeneratedTrace TraceGen::Next() {
  const TraceGenOptions& o = options_;
  GeneratedTrace out;

  const auto skewed = [&](double head_mass, int domain) {
    if (domain <= 1 || rng_.Bernoulli(head_mass)) return 0;
    return 1 + static_cast<int>(rng_.Uniform(uint64_t(domain - 1)));
  };

  std::vector<Timestamp> stamps;
  Timestamp ts = 1;
  for (int i = 0; i < o.num_events; ++i) {
    if (i > 0) {
      if (!stamps.empty() && rng_.Bernoulli(o.p_boundary)) {
        // Boundary-exact: land exactly `window` after an earlier event,
        // making some span hit WITHIN's inclusive edge precisely.
        const Timestamp anchor =
            stamps[rng_.Uniform(stamps.size())] + o.window;
        ts = std::max(ts, anchor);
      } else if (rng_.Bernoulli(o.p_tie)) {
        // gap 0: tie with the previous event
      } else {
        ts += static_cast<Timestamp>(rng_.Uniform(uint64_t(o.max_gap) + 1));
      }
    }
    stamps.push_back(ts);
  }
  std::sort(stamps.begin(), stamps.end());

  for (int i = 0; i < o.num_events; ++i) {
    EventBuilder eb(schema_);
    eb.At(stamps[size_t(i)]);
    for (int f = 0; f < schema_->num_fields(); ++f) {
      const Field& field = schema_->field(f);
      if (field.name == "sym") {
        eb.Set("sym", Value(Cat("s", skewed(o.sym_skew, o.sym_alphabet))));
      } else if (field.name == "grp") {
        eb.Set("grp", Value(Cat("k", skewed(o.key_skew, o.key_domain))));
      } else {
        switch (field.type) {
          case ValueType::kInt64:
            eb.Set(field.name, rng_.UniformRange(0, o.val_range));
            break;
          case ValueType::kDouble:
            eb.Set(field.name,
                   static_cast<double>(rng_.UniformRange(0, 100)) / 10.0);
            break;
          case ValueType::kString:
            eb.Set(field.name,
                   Value(Cat("v", static_cast<int>(rng_.Uniform(4)))));
            break;
          default:
            eb.Set(field.name, Value(int64_t{0}));
            break;
        }
      }
    }
    out.events.push_back(eb.Build());
  }

  if (o.shuffle_span > 0) {
    // Bounded local shuffle: swap each position with a random partner at
    // most shuffle_span ahead; displacement (and thus required reorder
    // slack) stays bounded by construction and is measured exactly.
    for (size_t i = 0; i + 1 < out.events.size(); ++i) {
      const size_t j =
          i + rng_.Uniform(uint64_t(o.shuffle_span) + 1);
      if (j > i && j < out.events.size()) {
        std::swap(out.events[i], out.events[j]);
      }
    }
  }
  Timestamp max_seen = kMinTimestamp;
  for (const EventPtr& e : out.events) {
    if (max_seen != kMinTimestamp && e->timestamp() < max_seen) {
      out.max_disorder =
          std::max(out.max_disorder, max_seen - e->timestamp());
    }
    max_seen = std::max(max_seen, e->timestamp());
  }
  return out;
}

}  // namespace zstream::testing
