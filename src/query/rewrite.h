// Rule-based pattern transformations (Section 5.2.1).
//
// The rewriter simplifies the parsed pattern AST before analysis. A
// transformation is accepted only when the target expression
//   1. has fewer operators, or
//   2. has the same number of operators but cheaper ones
//      (C_DIS < C_SEQ < C_CON; NSEQ and KSEQ are not substitutable).
//
// Implemented rules:
//   * associative flattening        (A;B);C      -> A;B;C   (also & and |)
//   * singleton collapse            seq(A)       -> A
//   * double negation               !!A          -> A
//   * De Morgan grouping            !B & !C      -> !(B|C)
#ifndef ZSTREAM_QUERY_REWRITE_H_
#define ZSTREAM_QUERY_REWRITE_H_

#include <string>
#include <vector>

#include "query/ast.h"

namespace zstream {

struct RewriteResult {
  ParseNodePtr node;
  /// Human-readable log of the rules applied, in order.
  std::vector<std::string> applied;
};

/// Rewrites `root` to a fixpoint of the rule set.
RewriteResult RewritePattern(const ParseNodePtr& root);

/// Cost rank used for the "same operator count, cheaper operators" rule:
/// the summed per-operator weights with DISJ < SEQ < CONJ.
int OperatorWeight(const ParseNodePtr& node);

}  // namespace zstream

#endif  // ZSTREAM_QUERY_REWRITE_H_
