// Parse-level AST: the direct output of the parser, before name
// resolution. Pattern operators are structural (negation and Kleene
// closure are wrapper nodes here; the analyzer folds them into class
// markers), and WHERE/RETURN expressions reference aliases by name.
#ifndef ZSTREAM_QUERY_AST_H_
#define ZSTREAM_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/timestamp.h"
#include "common/value.h"
#include "expr/expr.h"
#include "plan/pattern.h"

namespace zstream {

// ---------------------------------------------------------------------
// Pattern AST
// ---------------------------------------------------------------------

enum class ParseOp : char { kClass, kSeq, kConj, kDisj, kNeg, kKleene };

struct ParseNode;
using ParseNodePtr = std::shared_ptr<const ParseNode>;

struct ParseNode {
  ParseOp op = ParseOp::kClass;
  std::string alias;                     // kClass
  std::vector<ParseNodePtr> children;    // operators; kNeg/kKleene: 1 child
  KleeneKind kleene = KleeneKind::kNone;  // kKleene
  int kleene_count = 0;

  static ParseNodePtr Class(std::string alias);
  static ParseNodePtr Make(ParseOp op, std::vector<ParseNodePtr> kids);
  static ParseNodePtr Neg(ParseNodePtr child);
  static ParseNodePtr Kleene(ParseNodePtr child, KleeneKind kind, int count);

  bool is_class() const { return op == ParseOp::kClass; }

  /// Total operator count (classes excluded) — the rewriter's "number of
  /// operators" metric from Section 5.2.1.
  int OperatorCount() const;

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Unresolved expressions (WHERE / RETURN)
// ---------------------------------------------------------------------

enum class UExprKind : char { kLiteral, kAttr, kUnary, kBinary, kAgg };

struct UExpr;
using UExprPtr = std::shared_ptr<const UExpr>;

struct UExpr {
  UExprKind kind = UExprKind::kLiteral;
  Value literal;
  std::string alias;   // kAttr / kAgg
  std::string field;   // kAttr / kAgg ("" for a bare alias reference)
  UnaryOp un_op = UnaryOp::kNot;
  BinaryOp bin_op = BinaryOp::kEq;
  std::string agg_name;  // kAgg
  UExprPtr left, right;
  // 1-based source coordinates of the token that introduced this node
  // (0 when built programmatically). The analyzer threads them onto the
  // resolved Expr so ZS-T diagnostics can point into the query text.
  int line = 0;
  int column = 0;

  static UExprPtr Lit(Value v, int line = 0, int column = 0);
  static UExprPtr Attr(std::string alias, std::string field, int line = 0,
                       int column = 0);
  static UExprPtr Unary(UnaryOp op, UExprPtr operand, int line = 0,
                        int column = 0);
  static UExprPtr Binary(BinaryOp op, UExprPtr l, UExprPtr r, int line = 0,
                         int column = 0);
  static UExprPtr Agg(std::string fn, std::string alias, std::string field,
                      int line = 0, int column = 0);
};

// ---------------------------------------------------------------------
// Parsed query
// ---------------------------------------------------------------------

struct ParsedQuery {
  ParseNodePtr pattern;
  UExprPtr where;       // nullptr when absent
  Duration window = 0;  // WITHIN, in internal time units
  std::vector<UExprPtr> return_items;  // empty => return all classes
};

// ---------------------------------------------------------------------
// Unparsing (query/unparser.cc)
// ---------------------------------------------------------------------

/// Serializes `expr` to parseable predicate text. Binary and unary
/// operators are fully parenthesized, so reparsing yields the same tree.
std::string UExprToString(const UExpr& expr);

/// Serializes a parsed query back to canonical, reparseable query text:
/// "PATTERN <p> [WHERE <pred>] WITHIN <n> [RETURN <items>]". Parsing the
/// result produces a query equivalent to `query` (same analyzed Pattern,
/// same matches) — the PatternBuilder round-trip contract.
std::string ToQueryString(const ParsedQuery& query);

}  // namespace zstream

#endif  // ZSTREAM_QUERY_AST_H_
