// DDL statement layer: the textual command surface over the catalog.
//
//   CREATE STREAM stock (sym STRING, price INT, volume INT, ts INT)
//   CREATE QUERY q ON stock AS PATTERN A;B WHERE ... WITHIN 200 [RETURN ...]
//   DROP QUERY q
//   DROP STREAM stock
//   SHOW QUERIES
//   SHOW STREAMS
//   SHOW PLAN q
//   EXPLAIN q            (alias for SHOW PLAN q)
//   EXPLAIN ANALYZE q
//   EXPLAIN TRACE q
//
// A bare `PATTERN ...` query is also accepted (kSelect) so one entry
// point handles both DDL and ad-hoc queries. Statements are parsed with
// the regular lexer; `CREATE QUERY ... AS <query>` hands the token
// stream to the pattern-query parser in place, so diagnostics keep
// their line/column inside the full statement text. Execution against a
// Catalog lives in the api layer (ZStream::Execute) — this layer is
// purely syntactic.
#ifndef ZSTREAM_QUERY_DDL_H_
#define ZSTREAM_QUERY_DDL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "query/ast.h"

namespace zstream {

enum class DdlKind : char {
  kCreateStream,
  kCreateQuery,
  kDropStream,
  kDropQuery,
  kShowStreams,
  kShowQueries,
  kShowPlan,  // SHOW PLAN <query>: the registered query's Explain() text
  /// EXPLAIN ANALYZE <query>: the plan tree annotated with live
  /// per-node counters and timings from the running engine.
  kExplainAnalyze,
  /// EXPLAIN TRACE <query>: recent sampled-match provenance — the
  /// contributing event ids, operator path, and plan fingerprint from
  /// the tracer's provenance ring (obs/trace.h).
  kExplainTrace,
  kSelect,    // a bare PATTERN query (no surrounding DDL)
};

struct DdlStatement {
  DdlKind kind = DdlKind::kSelect;
  std::string name;           // stream name / query name
  /// 1-based source coordinates of `name` in the statement text (0 when
  /// the statement has no name), so execution-time lookup failures
  /// (e.g. SHOW PLAN on an unknown query) can point at the offender.
  int name_line = 0;
  int name_column = 0;
  std::string stream;         // kCreateQuery: the ON <stream> target
  std::vector<Field> fields;  // kCreateStream: the declared schema
  std::optional<ParsedQuery> query;  // kCreateQuery / kSelect
  /// kCreateQuery / kSelect: the raw query text (everything from the
  /// PATTERN keyword on), kept for SHOW QUERIES and re-compilation.
  std::string query_text;
};

/// Parses one statement. Errors carry stable codes (query/error_codes.h)
/// and 1-based line/column via Status.
Result<DdlStatement> ParseDdl(const std::string& text);

/// Maps a DDL type name (STRING, INT, LONG, FLOAT, DOUBLE, BOOL — case
/// insensitive) to a ValueType; NotFound-style ParseError otherwise.
Result<ValueType> DdlTypeFromName(const std::string& name);

/// The canonical DDL spelling of a field type (inverse of
/// DdlTypeFromName, e.g. kInt64 -> "INT").
const char* DdlTypeName(ValueType type);

}  // namespace zstream

#endif  // ZSTREAM_QUERY_DDL_H_
