#include "query/ddl.h"

#include "common/string_util.h"
#include "query/error_codes.h"
#include "query/lexer.h"
#include "query/parser.h"

namespace zstream {

Result<ValueType> DdlTypeFromName(const std::string& name) {
  const std::string t = ToLower(name);
  if (t == "string" || t == "varchar" || t == "text") {
    return ValueType::kString;
  }
  if (t == "int" || t == "long" || t == "int64" || t == "bigint") {
    return ValueType::kInt64;
  }
  if (t == "float" || t == "double" || t == "real") {
    return ValueType::kDouble;
  }
  if (t == "bool" || t == "boolean") return ValueType::kBool;
  return Status::ParseError("unknown field type '" + name + "'")
      .WithErrorCode(errc::kDdlUnknownType);
}

const char* DdlTypeName(ValueType type) {
  switch (type) {
    case ValueType::kString: return "STRING";
    case ValueType::kInt64: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kBool: return "BOOL";
    case ValueType::kNull: break;
  }
  return "NULL";
}

namespace {

/// Minimal cursor over the shared token stream; pattern-query bodies are
/// handed off to ParseQueryTokens at the current position.
class DdlParser {
 public:
  DdlParser(std::vector<Token> tokens, const std::string& text)
      : tokens_(std::move(tokens)), text_(text) {}

  Result<DdlStatement> Parse();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& msg, const char* code) const {
    const Token& t = Peek();
    return Status::ParseError(msg).WithErrorCode(code).WithLocation(
        t.line, t.column);
  }

  Status ExpectKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return Status::OK();
    }
    return Err(std::string("expected ") + kw, errc::kDdlExpectedToken);
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Err(std::string("expected ") + what, errc::kDdlExpectedIdent);
    }
    return Advance().text;
  }

  Result<DdlStatement> ParseCreateStream(std::string name);
  Result<DdlStatement> ParseCreateQuery(std::string name);

  std::vector<Token> tokens_;
  const std::string& text_;
  size_t pos_ = 0;
};

Result<DdlStatement> DdlParser::ParseCreateStream(std::string name) {
  DdlStatement stmt;
  stmt.kind = DdlKind::kCreateStream;
  stmt.name = std::move(name);
  if (Peek().type != TokenType::kLParen) {
    return Err("expected '(' after stream name", errc::kDdlExpectedToken);
  }
  Advance();
  if (Peek().type == TokenType::kRParen) {
    return Err("a stream needs at least one field", errc::kDdlEmptySchema);
  }
  while (true) {
    const Token name_tok = Peek();
    ZS_ASSIGN_OR_RETURN(std::string field_name, ExpectIdent("field name"));
    for (const Field& f : stmt.fields) {
      if (f.name == field_name) {
        return Status::ParseError("duplicate field '" + field_name + "'")
            .WithErrorCode(errc::kDdlDuplicateField)
            .WithLocation(name_tok.line, name_tok.column);
      }
    }
    const Token type_tok = Peek();
    ZS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("field type"));
    auto type = DdlTypeFromName(type_name);
    if (!type.ok()) {
      return type.status().WithLocation(type_tok.line, type_tok.column);
    }
    stmt.fields.push_back(Field{std::move(field_name), *type});
    if (Peek().type == TokenType::kComma) {
      Advance();
      continue;
    }
    break;
  }
  if (Peek().type != TokenType::kRParen) {
    return Err("expected ',' or ')' in field list", errc::kDdlExpectedToken);
  }
  Advance();
  if (Peek().type != TokenType::kEnd) {
    return Err("unexpected trailing input after CREATE STREAM",
                   errc::kParseTrailingInput);
  }
  return stmt;
}

Result<DdlStatement> DdlParser::ParseCreateQuery(std::string name) {
  DdlStatement stmt;
  stmt.kind = DdlKind::kCreateQuery;
  stmt.name = std::move(name);
  ZS_RETURN_IF_ERROR(ExpectKeyword("ON"));
  ZS_ASSIGN_OR_RETURN(stmt.stream, ExpectIdent("stream name"));
  ZS_RETURN_IF_ERROR(ExpectKeyword("AS"));
  stmt.query_text = text_.substr(Peek().offset);
  ZS_ASSIGN_OR_RETURN(ParsedQuery query,
                      ParseQueryTokens(std::move(tokens_), pos_));
  stmt.query = std::move(query);
  return stmt;
}

Result<DdlStatement> DdlParser::Parse() {
  if (Peek().IsKeyword("CREATE")) {
    Advance();
    if (Peek().IsKeyword("STREAM")) {
      Advance();
      const Token name_tok = Peek();
      ZS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("stream name"));
      ZS_ASSIGN_OR_RETURN(DdlStatement stmt,
                          ParseCreateStream(std::move(name)));
      stmt.name_line = name_tok.line;
      stmt.name_column = name_tok.column;
      return stmt;
    }
    if (Peek().IsKeyword("QUERY")) {
      Advance();
      const Token name_tok = Peek();
      ZS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("query name"));
      ZS_ASSIGN_OR_RETURN(DdlStatement stmt,
                          ParseCreateQuery(std::move(name)));
      stmt.name_line = name_tok.line;
      stmt.name_column = name_tok.column;
      return stmt;
    }
    return Err("expected STREAM or QUERY after CREATE",
                 errc::kDdlUnknownStatement);
  }
  if (Peek().IsKeyword("DROP")) {
    Advance();
    DdlStatement stmt;
    if (Peek().IsKeyword("STREAM")) {
      stmt.kind = DdlKind::kDropStream;
    } else if (Peek().IsKeyword("QUERY")) {
      stmt.kind = DdlKind::kDropQuery;
    } else {
      return Err("expected STREAM or QUERY after DROP",
                   errc::kDdlUnknownStatement);
    }
    Advance();
    const Token name_tok = Peek();
    ZS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("name"));
    stmt.name_line = name_tok.line;
    stmt.name_column = name_tok.column;
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input after DROP",
                 errc::kParseTrailingInput);
    }
    return stmt;
  }
  if (Peek().IsKeyword("SHOW")) {
    Advance();
    DdlStatement stmt;
    if (Peek().IsKeyword("STREAMS")) {
      stmt.kind = DdlKind::kShowStreams;
    } else if (Peek().IsKeyword("QUERIES")) {
      stmt.kind = DdlKind::kShowQueries;
    } else if (Peek().IsKeyword("PLAN")) {
      stmt.kind = DdlKind::kShowPlan;
      Advance();
      const Token name_tok = Peek();
      ZS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("query name"));
      stmt.name_line = name_tok.line;
      stmt.name_column = name_tok.column;
      if (Peek().type != TokenType::kEnd) {
        return Err("unexpected trailing input after SHOW PLAN",
                   errc::kParseTrailingInput);
      }
      return stmt;
    } else {
      return Err("expected STREAMS, QUERIES or PLAN after SHOW",
                   errc::kDdlUnknownStatement);
    }
    Advance();
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input after SHOW",
                 errc::kParseTrailingInput);
    }
    return stmt;
  }
  if (Peek().IsKeyword("EXPLAIN")) {
    Advance();
    DdlStatement stmt;
    // Bare EXPLAIN is the static plan (same as SHOW PLAN); ANALYZE
    // asks the live engine for its counter-annotated tree; TRACE asks
    // the tracer for recent sampled-match provenance.
    if (Peek().IsKeyword("ANALYZE")) {
      Advance();
      stmt.kind = DdlKind::kExplainAnalyze;
    } else if (Peek().IsKeyword("TRACE")) {
      Advance();
      stmt.kind = DdlKind::kExplainTrace;
    } else {
      stmt.kind = DdlKind::kShowPlan;
    }
    const Token name_tok = Peek();
    ZS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("query name"));
    stmt.name_line = name_tok.line;
    stmt.name_column = name_tok.column;
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input after EXPLAIN",
                 errc::kParseTrailingInput);
    }
    return stmt;
  }
  if (Peek().IsKeyword("PATTERN")) {
    DdlStatement stmt;
    stmt.kind = DdlKind::kSelect;
    stmt.query_text = text_.substr(Peek().offset);
    ZS_ASSIGN_OR_RETURN(ParsedQuery query,
                        ParseQueryTokens(std::move(tokens_), pos_));
    stmt.query = std::move(query);
    return stmt;
  }
  return Err("expected CREATE, DROP, SHOW, EXPLAIN or PATTERN",
             errc::kDdlUnknownStatement);
}

}  // namespace

Result<DdlStatement> ParseDdl(const std::string& text) {
  ZS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  DdlParser parser(std::move(tokens), text);
  return parser.Parse();
}

}  // namespace zstream
