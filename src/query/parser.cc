#include "query/parser.h"

#include <sstream>

#include "common/string_util.h"
#include "query/error_codes.h"
#include "query/lexer.h"

namespace zstream {

// ---------------------------------------------------------------------
// ParseNode / UExpr constructors
// ---------------------------------------------------------------------

ParseNodePtr ParseNode::Class(std::string alias) {
  auto n = std::make_shared<ParseNode>();
  n->op = ParseOp::kClass;
  n->alias = std::move(alias);
  return n;
}

ParseNodePtr ParseNode::Make(ParseOp op, std::vector<ParseNodePtr> kids) {
  auto n = std::make_shared<ParseNode>();
  n->op = op;
  n->children = std::move(kids);
  return n;
}

ParseNodePtr ParseNode::Neg(ParseNodePtr child) {
  auto n = std::make_shared<ParseNode>();
  n->op = ParseOp::kNeg;
  n->children = {std::move(child)};
  return n;
}

ParseNodePtr ParseNode::Kleene(ParseNodePtr child, KleeneKind kind,
                               int count) {
  auto n = std::make_shared<ParseNode>();
  n->op = ParseOp::kKleene;
  n->children = {std::move(child)};
  n->kleene = kind;
  n->kleene_count = count;
  return n;
}

int ParseNode::OperatorCount() const {
  int count = 0;
  switch (op) {
    case ParseOp::kClass:
      return 0;
    case ParseOp::kSeq:
    case ParseOp::kConj:
    case ParseOp::kDisj:
      // An n-ary connective is n-1 binary operators.
      count = static_cast<int>(children.size()) - 1;
      break;
    case ParseOp::kNeg:
    case ParseOp::kKleene:
      count = 1;
      break;
  }
  for (const auto& c : children) count += c->OperatorCount();
  return count;
}

std::string ParseNode::ToString() const {
  std::ostringstream os;
  switch (op) {
    case ParseOp::kClass:
      os << alias;
      break;
    case ParseOp::kSeq:
    case ParseOp::kConj:
    case ParseOp::kDisj: {
      const char* sep =
          op == ParseOp::kSeq ? ";" : (op == ParseOp::kConj ? "&" : "|");
      os << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << sep;
        os << children[i]->ToString();
      }
      os << ")";
      break;
    }
    case ParseOp::kNeg:
      os << "!" << children[0]->ToString();
      break;
    case ParseOp::kKleene:
      os << children[0]->ToString();
      if (kleene == KleeneKind::kStar) os << "*";
      if (kleene == KleeneKind::kPlus) os << "+";
      if (kleene == KleeneKind::kCount) os << "^" << kleene_count;
      break;
  }
  return os.str();
}

UExprPtr UExpr::Lit(Value v, int line, int column) {
  auto e = std::make_shared<UExpr>();
  e->kind = UExprKind::kLiteral;
  e->literal = std::move(v);
  e->line = line;
  e->column = column;
  return e;
}
UExprPtr UExpr::Attr(std::string alias, std::string field, int line,
                     int column) {
  auto e = std::make_shared<UExpr>();
  e->kind = UExprKind::kAttr;
  e->alias = std::move(alias);
  e->field = std::move(field);
  e->line = line;
  e->column = column;
  return e;
}
UExprPtr UExpr::Unary(UnaryOp op, UExprPtr operand, int line, int column) {
  auto e = std::make_shared<UExpr>();
  e->kind = UExprKind::kUnary;
  e->un_op = op;
  e->left = std::move(operand);
  e->line = line;
  e->column = column;
  return e;
}
UExprPtr UExpr::Binary(BinaryOp op, UExprPtr l, UExprPtr r, int line,
                       int column) {
  auto e = std::make_shared<UExpr>();
  e->kind = UExprKind::kBinary;
  e->bin_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  e->line = line;
  e->column = column;
  return e;
}
UExprPtr UExpr::Agg(std::string fn, std::string alias, std::string field,
                    int line, int column) {
  auto e = std::make_shared<UExpr>();
  e->kind = UExprKind::kAgg;
  e->agg_name = std::move(fn);
  e->alias = std::move(alias);
  e->field = std::move(field);
  e->line = line;
  e->column = column;
  return e;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, size_t start = 0)
      : tokens_(std::move(tokens)), pos_(start) {}

  Result<ParsedQuery> ParseQuery();
  Result<ParseNodePtr> ParsePatternOnly();
  Result<UExprPtr> ParsePredicateOnly();

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenType t) {
    if (Peek().type == t) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* what) {
    if (Match(t)) return Status::OK();
    return Err(std::string("expected ") + what);
  }
  /// Parse error anchored at the current token, carrying a stable
  /// diagnostic code and the token's 1-based line/column.
  Status Err(const std::string& msg,
             const char* code = errc::kParseExpectedToken) const {
    const Token& t = Peek();
    return Status::ParseError(msg).WithErrorCode(code).WithLocation(t.line,
                                                                    t.column);
  }
  bool AtClauseBoundary() const {
    const Token& t = Peek();
    return t.type == TokenType::kEnd || t.IsKeyword("WHERE") ||
           t.IsKeyword("WITHIN") || t.IsKeyword("RETURN");
  }

  // Pattern grammar.
  Result<ParseNodePtr> Pattern();
  Result<ParseNodePtr> Term();
  Result<ParseNodePtr> Factor();
  Result<ParseNodePtr> PatternUnary();
  Result<ParseNodePtr> PatternPrimary();
  Result<ParseNodePtr> ApplyClosure(ParseNodePtr node);

  // Predicate grammar.
  Result<UExprPtr> OrExpr();
  Result<UExprPtr> AndExpr();
  Result<UExprPtr> NotExpr();
  Result<UExprPtr> Comparison();
  Result<UExprPtr> Additive();
  Result<UExprPtr> Multiplicative();
  Result<UExprPtr> ExprPrimary();

  Result<Duration> ParseWithin();
  Result<std::vector<UExprPtr>> ParseReturn();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<ParseNodePtr> Parser::Pattern() {
  ZS_ASSIGN_OR_RETURN(ParseNodePtr first, Term());
  std::vector<ParseNodePtr> kids{first};
  while (Match(TokenType::kSemicolon)) {
    ZS_ASSIGN_OR_RETURN(ParseNodePtr next, Term());
    kids.push_back(next);
  }
  if (kids.size() == 1) return kids[0];
  return ParseNode::Make(ParseOp::kSeq, std::move(kids));
}

Result<ParseNodePtr> Parser::Term() {
  ZS_ASSIGN_OR_RETURN(ParseNodePtr first, Factor());
  std::vector<ParseNodePtr> kids{first};
  while (Match(TokenType::kPipe)) {
    ZS_ASSIGN_OR_RETURN(ParseNodePtr next, Factor());
    kids.push_back(next);
  }
  if (kids.size() == 1) return kids[0];
  return ParseNode::Make(ParseOp::kDisj, std::move(kids));
}

Result<ParseNodePtr> Parser::Factor() {
  ZS_ASSIGN_OR_RETURN(ParseNodePtr first, PatternUnary());
  std::vector<ParseNodePtr> kids{first};
  while (Match(TokenType::kAmp)) {
    ZS_ASSIGN_OR_RETURN(ParseNodePtr next, PatternUnary());
    kids.push_back(next);
  }
  if (kids.size() == 1) return kids[0];
  return ParseNode::Make(ParseOp::kConj, std::move(kids));
}

Result<ParseNodePtr> Parser::PatternUnary() {
  if (Match(TokenType::kBang)) {
    ZS_ASSIGN_OR_RETURN(ParseNodePtr child, PatternUnary());
    return ParseNode::Neg(std::move(child));
  }
  return PatternPrimary();
}

Result<ParseNodePtr> Parser::PatternPrimary() {
  if (Peek().type == TokenType::kIdent) {
    if (AtClauseBoundary()) {
      return Err("unexpected clause keyword in pattern",
                 errc::kParseExpectedPattern);
    }
    ParseNodePtr node = ParseNode::Class(Advance().text);
    return ApplyClosure(std::move(node));
  }
  if (Match(TokenType::kLParen)) {
    ZS_ASSIGN_OR_RETURN(ParseNodePtr node, Pattern());
    ZS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return ApplyClosure(std::move(node));
  }
  return Err("expected event class or '(' in pattern",
             errc::kParseExpectedPattern);
}

Result<ParseNodePtr> Parser::ApplyClosure(ParseNodePtr node) {
  if (Match(TokenType::kStar)) {
    return ParseNode::Kleene(std::move(node), KleeneKind::kStar, 0);
  }
  if (Match(TokenType::kPlus)) {
    return ParseNode::Kleene(std::move(node), KleeneKind::kPlus, 0);
  }
  if (Match(TokenType::kCaret)) {
    if (Peek().type != TokenType::kInt) {
      return Err("expected integer closure count after '^'",
                 errc::kParseBadClosure);
    }
    const int count = static_cast<int>(Advance().number);
    return ParseNode::Kleene(std::move(node), KleeneKind::kCount, count);
  }
  return node;
}

Result<UExprPtr> Parser::OrExpr() {
  ZS_ASSIGN_OR_RETURN(UExprPtr left, AndExpr());
  while (Peek().IsKeyword("OR")) {
    const Token& op_tok = Advance();
    ZS_ASSIGN_OR_RETURN(UExprPtr right, AndExpr());
    left = UExpr::Binary(BinaryOp::kOr, std::move(left), std::move(right),
                         op_tok.line, op_tok.column);
  }
  return left;
}

Result<UExprPtr> Parser::AndExpr() {
  ZS_ASSIGN_OR_RETURN(UExprPtr left, NotExpr());
  while (Peek().IsKeyword("AND")) {
    const Token& op_tok = Advance();
    ZS_ASSIGN_OR_RETURN(UExprPtr right, NotExpr());
    left = UExpr::Binary(BinaryOp::kAnd, std::move(left), std::move(right),
                         op_tok.line, op_tok.column);
  }
  return left;
}

Result<UExprPtr> Parser::NotExpr() {
  if (Peek().IsKeyword("NOT")) {
    const Token& op_tok = Advance();
    ZS_ASSIGN_OR_RETURN(UExprPtr operand, NotExpr());
    return UExpr::Unary(UnaryOp::kNot, std::move(operand), op_tok.line,
                        op_tok.column);
  }
  return Comparison();
}

namespace {
bool IsRelop(TokenType t, BinaryOp* op) {
  switch (t) {
    case TokenType::kEq: *op = BinaryOp::kEq; return true;
    case TokenType::kNe: *op = BinaryOp::kNe; return true;
    case TokenType::kLt: *op = BinaryOp::kLt; return true;
    case TokenType::kLe: *op = BinaryOp::kLe; return true;
    case TokenType::kGt: *op = BinaryOp::kGt; return true;
    case TokenType::kGe: *op = BinaryOp::kGe; return true;
    default: return false;
  }
}
}  // namespace

// Supports chained comparisons: `a = b = c` means `a = b AND b = c`
// (used by Query 2's `T1.name = T2.name = T3.name`).
Result<UExprPtr> Parser::Comparison() {
  ZS_ASSIGN_OR_RETURN(UExprPtr left, Additive());
  BinaryOp op;
  if (!IsRelop(Peek().type, &op)) return left;
  UExprPtr result;
  UExprPtr prev = left;
  while (IsRelop(Peek().type, &op)) {
    const Token& op_tok = Advance();
    ZS_ASSIGN_OR_RETURN(UExprPtr next, Additive());
    UExprPtr cmp = UExpr::Binary(op, prev, next, op_tok.line, op_tok.column);
    result = result == nullptr
                 ? cmp
                 : UExpr::Binary(BinaryOp::kAnd, std::move(result), cmp,
                                 op_tok.line, op_tok.column);
    prev = next;
  }
  return result;
}

Result<UExprPtr> Parser::Additive() {
  ZS_ASSIGN_OR_RETURN(UExprPtr left, Multiplicative());
  while (true) {
    if (Peek().type == TokenType::kPlus) {
      const Token& op_tok = Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr right, Multiplicative());
      left = UExpr::Binary(BinaryOp::kAdd, std::move(left), std::move(right),
                           op_tok.line, op_tok.column);
    } else if (Peek().type == TokenType::kMinus) {
      const Token& op_tok = Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr right, Multiplicative());
      left = UExpr::Binary(BinaryOp::kSub, std::move(left), std::move(right),
                           op_tok.line, op_tok.column);
    } else {
      return left;
    }
  }
}

Result<UExprPtr> Parser::Multiplicative() {
  ZS_ASSIGN_OR_RETURN(UExprPtr left, ExprPrimary());
  while (true) {
    if (Peek().type == TokenType::kStar) {
      const Token& op_tok = Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr right, ExprPrimary());
      left = UExpr::Binary(BinaryOp::kMul, std::move(left), std::move(right),
                           op_tok.line, op_tok.column);
    } else if (Peek().type == TokenType::kSlash) {
      const Token& op_tok = Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr right, ExprPrimary());
      left = UExpr::Binary(BinaryOp::kDiv, std::move(left), std::move(right),
                           op_tok.line, op_tok.column);
    } else if (Peek().type == TokenType::kPercentOp) {
      const Token& op_tok = Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr right, ExprPrimary());
      left = UExpr::Binary(BinaryOp::kMod, std::move(left), std::move(right),
                           op_tok.line, op_tok.column);
    } else {
      return left;
    }
  }
}

Result<UExprPtr> Parser::ExprPrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInt: {
      Advance();
      return UExpr::Lit(Value(static_cast<int64_t>(t.number)), t.line,
                        t.column);
    }
    case TokenType::kFloat: {
      Advance();
      return UExpr::Lit(Value(t.number), t.line, t.column);
    }
    case TokenType::kPercent: {
      Advance();
      return UExpr::Lit(Value(t.number), t.line, t.column);
    }
    case TokenType::kString: {
      Advance();
      return UExpr::Lit(Value(t.text), t.line, t.column);
    }
    case TokenType::kMinus: {
      Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr operand, ExprPrimary());
      return UExpr::Unary(UnaryOp::kNegate, std::move(operand), t.line,
                          t.column);
    }
    case TokenType::kLParen: {
      Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr inner, OrExpr());
      ZS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kIdent: {
      const std::string name = Advance().text;
      if (Match(TokenType::kLParen)) {
        // Aggregate: fn(alias.field) or count(alias).
        if (Peek().type != TokenType::kIdent) {
          return Err("expected alias inside aggregate", errc::kParseExpectedExpr);
        }
        const std::string alias = Advance().text;
        std::string field;
        if (Match(TokenType::kDot)) {
          if (Peek().type != TokenType::kIdent) {
            return Err("expected attribute name after '.'", errc::kParseExpectedExpr);
          }
          field = Advance().text;
        }
        ZS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return UExpr::Agg(ToLower(name), alias, field, t.line, t.column);
      }
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdent) {
          return Err("expected attribute name after '.'", errc::kParseExpectedExpr);
        }
        return UExpr::Attr(name, Advance().text, t.line, t.column);
      }
      // Bare alias (only meaningful in RETURN).
      return UExpr::Attr(name, "", t.line, t.column);
    }
    default:
      return Err("expected expression", errc::kParseExpectedExpr);
  }
}

Result<Duration> Parser::ParseWithin() {
  if (Peek().type != TokenType::kInt && Peek().type != TokenType::kFloat) {
    return Err("expected number after WITHIN", errc::kParseBadDuration);
  }
  const double n = Advance().number;
  double scale = 1.0;  // bare numbers are internal units
  if (Peek().type == TokenType::kIdent && !AtClauseBoundary()) {
    const Token unit_tok = Peek();
    const std::string unit = ToLower(Advance().text);
    if (unit == "ms" || unit == "unit" || unit == "units") {
      scale = 1.0;
    } else if (unit == "s" || unit == "sec" || unit == "secs" ||
               unit == "second" || unit == "seconds") {
      scale = 1000.0;
    } else if (unit == "min" || unit == "mins" || unit == "minute" ||
               unit == "minutes") {
      scale = 60.0 * 1000.0;
    } else if (unit == "hour" || unit == "hours" || unit == "h" ||
               unit == "hr" || unit == "hrs") {
      scale = 3600.0 * 1000.0;
    } else {
      return Status::ParseError("unknown time unit '" + unit + "'")
          .WithErrorCode(errc::kParseBadDuration)
          .WithLocation(unit_tok.line, unit_tok.column);
    }
  }
  return static_cast<Duration>(n * scale);
}

Result<std::vector<UExprPtr>> Parser::ParseReturn() {
  std::vector<UExprPtr> items;
  do {
    ZS_ASSIGN_OR_RETURN(UExprPtr item, OrExpr());
    items.push_back(std::move(item));
  } while (Match(TokenType::kComma));
  return items;
}

Result<ParsedQuery> Parser::ParseQuery() {
  ParsedQuery q;
  if (!Peek().IsKeyword("PATTERN")) {
    return Err("query must begin with PATTERN", errc::kParseExpectedPatternKw);
  }
  Advance();
  ZS_ASSIGN_OR_RETURN(q.pattern, Pattern());
  if (Peek().IsKeyword("WHERE")) {
    Advance();
    ZS_ASSIGN_OR_RETURN(q.where, OrExpr());
    // Tolerate the paper's Query 3 style of a repeated WHERE keyword.
    while (Peek().IsKeyword("WHERE")) {
      Advance();
      ZS_ASSIGN_OR_RETURN(UExprPtr more, OrExpr());
      q.where = UExpr::Binary(BinaryOp::kAnd, q.where, std::move(more));
    }
  }
  if (!Peek().IsKeyword("WITHIN")) {
    return Err("expected WITHIN clause", errc::kParseExpectedWithin);
  }
  Advance();
  ZS_ASSIGN_OR_RETURN(q.window, ParseWithin());
  if (Peek().IsKeyword("RETURN")) {
    Advance();
    ZS_ASSIGN_OR_RETURN(q.return_items, ParseReturn());
  }
  if (Peek().type != TokenType::kEnd) {
    return Err("unexpected trailing input", errc::kParseTrailingInput);
  }
  return q;
}

Result<ParseNodePtr> Parser::ParsePatternOnly() {
  ZS_ASSIGN_OR_RETURN(ParseNodePtr p, Pattern());
  if (Peek().type != TokenType::kEnd) return Err("unexpected trailing input", errc::kParseTrailingInput);
  return p;
}

Result<UExprPtr> Parser::ParsePredicateOnly() {
  ZS_ASSIGN_OR_RETURN(UExprPtr e, OrExpr());
  if (Peek().type != TokenType::kEnd) return Err("unexpected trailing input", errc::kParseTrailingInput);
  return e;
}

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text) {
  ZS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ParsedQuery> ParseQueryTokens(std::vector<Token> tokens,
                                     size_t start) {
  Parser parser(std::move(tokens), start);
  return parser.ParseQuery();
}

Result<ParseNodePtr> ParsePattern(const std::string& text) {
  ZS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParsePatternOnly();
}

Result<UExprPtr> ParsePredicate(const std::string& text) {
  ZS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParsePredicateOnly();
}

}  // namespace zstream
