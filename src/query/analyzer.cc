#include "query/analyzer.h"

#include <functional>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "expr/analysis.h"
#include "query/error_codes.h"
#include "query/parser.h"
#include "query/rewrite.h"

namespace zstream {

namespace {

struct AliasInfo {
  int class_idx = -1;
  int branch_idx = -1;  // >= 0 when the alias is a branch of a merged class
};

class AnalyzerImpl {
 public:
  AnalyzerImpl(SchemaPtr schema, const AnalyzerOptions& options)
      : schema_(std::move(schema)), options_(options) {}

  Result<PatternPtr> Run(const ParsedQuery& query) {
    ParseNodePtr ast = query.pattern;
    if (ast == nullptr) return Status::SemanticError("empty pattern");
    if (options_.apply_rewrites) {
      ast = RewritePattern(ast).node;
    }
    auto pattern = std::make_shared<Pattern>();
    pattern_ = pattern.get();
    pattern_->window = query.window;

    ZS_ASSIGN_OR_RETURN(pattern_->root, BuildNode(ast, /*negated=*/false));

    if (query.where != nullptr) {
      ZS_RETURN_IF_ERROR(ResolveWhere(query.where));
    }
    MaterializeEqualityChains();
    if (options_.detect_partition) {
      DetectPartition();
    }
    ZS_RETURN_IF_ERROR(ResolveReturn(query.return_items));
    ZS_RETURN_IF_ERROR(pattern->Validate());
    return PatternPtr(pattern);
  }

 private:
  Result<int> AddClass(const std::string& alias, bool negated) {
    if (aliases_.count(alias) > 0) {
      return Status::SemanticError("duplicate event class alias '" + alias +
                                   "'");
    }
    const int idx = pattern_->num_classes();
    EventClass ec;
    ec.alias = alias;
    ec.schema = schema_;
    ec.negated = negated;
    pattern_->classes.push_back(std::move(ec));
    aliases_[alias] = AliasInfo{idx, -1};
    return idx;
  }

  Result<PatternNodePtr> BuildNode(const ParseNodePtr& node, bool negated) {
    switch (node->op) {
      case ParseOp::kClass: {
        ZS_ASSIGN_OR_RETURN(const int idx, AddClass(node->alias, negated));
        return PatternNode::Class(idx);
      }
      case ParseOp::kNeg: {
        if (negated) {
          // Double negation is removed by the rewriter; reaching this
          // means rewrites were disabled.
          return Status::NotSupported(
              "nested negation requires rewrites enabled");
        }
        const ParseNodePtr& child = node->children[0];
        if (child->is_class()) {
          return BuildNode(child, /*negated=*/true);
        }
        if (child->op == ParseOp::kDisj) {
          return MergeNegatedDisjunction(child);
        }
        return Status::NotSupported(
            "negation of composite sub-pattern '" + child->ToString() +
            "' is not supported (only !Class and !(B|C|...))");
      }
      case ParseOp::kKleene: {
        const ParseNodePtr& child = node->children[0];
        if (!child->is_class()) {
          return Status::NotSupported(
              "Kleene closure over composite sub-patterns is not supported");
        }
        ZS_ASSIGN_OR_RETURN(const int idx,
                            AddClass(child->alias, /*negated=*/false));
        EventClass& ec = pattern_->classes[static_cast<size_t>(idx)];
        ec.kleene = node->kleene;
        ec.kleene_count = node->kleene_count;
        return PatternNode::Class(idx);
      }
      case ParseOp::kSeq:
      case ParseOp::kConj:
      case ParseOp::kDisj: {
        std::vector<PatternNodePtr> kids;
        kids.reserve(node->children.size());
        for (const auto& c : node->children) {
          ZS_ASSIGN_OR_RETURN(PatternNodePtr k, BuildNode(c, false));
          kids.push_back(std::move(k));
        }
        const PatternOp op = node->op == ParseOp::kSeq
                                 ? PatternOp::kSeq
                                 : (node->op == ParseOp::kConj
                                        ? PatternOp::kConj
                                        : PatternOp::kDisj);
        return PatternNode::Make(op, std::move(kids));
      }
    }
    return Status::Internal("unreachable pattern node kind");
  }

  // `!(B|C)`: one merged negated class; B and C become admission
  // branches whose single-class predicates OR together.
  Result<PatternNodePtr> MergeNegatedDisjunction(const ParseNodePtr& disj) {
    std::vector<std::string> branch_aliases;
    for (const auto& c : disj->children) {
      if (!c->is_class()) {
        return Status::NotSupported(
            "negated disjunction must contain only plain classes");
      }
      branch_aliases.push_back(c->alias);
    }
    const std::string merged_alias = "!(" + Join(branch_aliases, "|") + ")";
    const int idx = pattern_->num_classes();
    EventClass ec;
    ec.alias = merged_alias;
    ec.schema = schema_;
    ec.negated = true;
    for (const std::string& a : branch_aliases) {
      if (aliases_.count(a) > 0) {
        return Status::SemanticError("duplicate event class alias '" + a + "'");
      }
      aliases_[a] =
          AliasInfo{idx, static_cast<int>(ec.neg_branches.size())};
      ec.neg_branches.push_back(NegBranch{a, {}});
    }
    pattern_->classes.push_back(std::move(ec));
    return PatternNode::Class(idx);
  }

  // Resolution carries the UExpr's source coordinates onto both the
  // produced Expr (for later verify/typecheck diagnostics) and any
  // error raised here (coded ZS-T: these are type/name errors, caught
  // statically before any event flows).
  Result<ExprPtr> Resolve(const UExprPtr& u) {
    switch (u->kind) {
      case UExprKind::kLiteral:
        return Expr::WithLocation(Expr::Literal(u->literal), u->line,
                                  u->column);
      case UExprKind::kAttr: {
        auto it = aliases_.find(u->alias);
        if (it == aliases_.end()) {
          return Status::SemanticError("unknown event class '" + u->alias +
                                       "'")
              .WithErrorCode(errc::kTypeUnknownAlias)
              .WithLocation(u->line, u->column);
        }
        if (u->field.empty()) {
          return Status::SemanticError("bare class reference '" + u->alias +
                                       "' is only allowed in RETURN")
              .WithErrorCode(errc::kTypeUnknownAttribute)
              .WithLocation(u->line, u->column);
        }
        const int cls = it->second.class_idx;
        const int fidx = schema_->FieldIndex(u->field);
        if (fidx >= 0) {
          return Expr::WithLocation(
              Expr::AttrRef(cls, fidx, u->alias, u->field), u->line,
              u->column);
        }
        if (EqualsIgnoreCase(u->field, "ts")) {
          return Expr::WithLocation(Expr::TimeRef(cls, u->alias), u->line,
                                    u->column);
        }
        return Status::SemanticError("unknown attribute '" + u->field +
                                     "' (schema: " + schema_->ToString() +
                                     ")")
            .WithErrorCode(errc::kTypeUnknownAttribute)
            .WithLocation(u->line, u->column);
      }
      case UExprKind::kUnary: {
        ZS_ASSIGN_OR_RETURN(ExprPtr operand, Resolve(u->left));
        return Expr::WithLocation(Expr::Unary(u->un_op, std::move(operand)),
                                  u->line, u->column);
      }
      case UExprKind::kBinary: {
        ZS_ASSIGN_OR_RETURN(ExprPtr l, Resolve(u->left));
        ZS_ASSIGN_OR_RETURN(ExprPtr r, Resolve(u->right));
        return Expr::WithLocation(
            Expr::Binary(u->bin_op, std::move(l), std::move(r)), u->line,
            u->column);
      }
      case UExprKind::kAgg: {
        ZS_ASSIGN_OR_RETURN(AggFn fn, AggFnFromName(u->agg_name));
        auto it = aliases_.find(u->alias);
        if (it == aliases_.end()) {
          return Status::SemanticError("unknown event class '" + u->alias +
                                       "' in aggregate")
              .WithErrorCode(errc::kTypeUnknownAlias)
              .WithLocation(u->line, u->column);
        }
        const int cls = it->second.class_idx;
        if (!pattern_->classes[static_cast<size_t>(cls)].is_kleene()) {
          return Status::SemanticError("aggregate over non-Kleene class '" +
                                       u->alias + "'")
              .WithErrorCode(errc::kTypeAggNonKleene)
              .WithLocation(u->line, u->column);
        }
        int fidx = -1;
        if (!u->field.empty()) {
          fidx = schema_->FieldIndex(u->field);
          if (fidx < 0) {
            return Status::SemanticError(
                       "unknown attribute '" + u->field + "' (schema: " +
                       schema_->ToString() + ")")
                .WithErrorCode(errc::kTypeUnknownAttribute)
                .WithLocation(u->line, u->column);
          }
        } else if (fn != AggFn::kCount) {
          return Status::SemanticError("aggregate '" + u->agg_name +
                                       "' requires an attribute")
              .WithErrorCode(errc::kTypeAggMissingField)
              .WithLocation(u->line, u->column);
        }
        return Expr::WithLocation(
            Expr::Aggregate(fn, cls, fidx, u->alias, u->field), u->line,
            u->column);
      }
    }
    return Status::Internal("unreachable expression kind");
  }

  // Returns the branch index when the conjunct references exactly one
  // branch alias (and nothing else), -1 when it references none;
  // errors when branch aliases mix with other classes.
  Result<int> BranchUse(const UExprPtr& u, int* owner_class) {
    int branch = -1;
    bool mixed = false;
    bool non_branch = false;
    std::function<void(const UExprPtr&)> walk = [&](const UExprPtr& e) {
      if (e == nullptr) return;
      if (e->kind == UExprKind::kAttr || e->kind == UExprKind::kAgg) {
        auto it = aliases_.find(e->alias);
        if (it == aliases_.end()) return;  // Resolve() will report it
        if (it->second.branch_idx >= 0) {
          if (branch >= 0 && branch != it->second.branch_idx) mixed = true;
          branch = it->second.branch_idx;
          *owner_class = it->second.class_idx;
        } else {
          non_branch = true;
        }
      }
      walk(e->left);
      walk(e->right);
    };
    walk(u);
    if (branch >= 0 && (mixed || non_branch)) {
      return Status::NotSupported(
          "predicates on a negated disjunction branch may reference only "
          "that branch");
    }
    return branch;
  }

  Status ResolveWhere(const UExprPtr& where) {
    // Split on top-level AND at the unresolved level so branch
    // classification can use alias names.
    std::vector<UExprPtr> conjuncts;
    std::function<void(const UExprPtr&)> split = [&](const UExprPtr& e) {
      if (e->kind == UExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
        split(e->left);
        split(e->right);
      } else {
        conjuncts.push_back(e);
      }
    };
    split(where);

    for (const UExprPtr& u : conjuncts) {
      int owner_class = -1;
      ZS_ASSIGN_OR_RETURN(const int branch, BranchUse(u, &owner_class));
      ZS_ASSIGN_OR_RETURN(ExprPtr e, Resolve(u));
      if (branch >= 0) {
        pattern_->classes[static_cast<size_t>(owner_class)]
            .neg_branches[static_cast<size_t>(branch)]
            .predicates.push_back(std::move(e));
        continue;
      }
      const std::set<int> classes = ReferencedClasses(e);
      if (classes.empty()) {
        return Status::SemanticError("predicate references no event class: " +
                                     e->ToString());
      }
      // Aggregates evaluate over assembled Kleene groups, so they can
      // never be pushed to a leaf buffer even when single-class.
      if (classes.size() == 1 && !ContainsAggregate(e)) {
        pattern_->classes[static_cast<size_t>(*classes.begin())]
            .leaf_predicates.push_back(std::move(e));
      } else {
        pattern_->multi_predicates.push_back(std::move(e));
      }
    }
    return Status::OK();
  }

  /// A same-attribute equality chain denotes one equivalence class
  /// ("partition by name", Figure 4) — but predicate logic alone does
  /// not give transitivity through an optional class: A.x=B.x AND
  /// B.x=C.x with !B says nothing about A.x vs C.x when no B occurs.
  /// Materialize the intended closure: whenever two always-bound
  /// classes (or an optional class and the bound component) are chained
  /// only through optional intermediates, add the direct equality.
  /// Chains running entirely over always-bound classes already enforce
  /// the closure and are left untouched.
  void MaterializeEqualityChains() {
    const int n = pattern_->num_classes();
    if (n < 3) return;
    const std::vector<bool> optional = pattern_->OptionalClasses();

    std::map<std::string, std::vector<EqualityJoin>> by_field;
    for (const ExprPtr& pred : pattern_->multi_predicates) {
      auto eq = AsEqualityJoin(pred);
      if (!eq.has_value() || eq->left_field != eq->right_field) continue;
      by_field[schema_->field(eq->left_field).name].push_back(*eq);
    }

    for (auto& [field_name, edges] : by_field) {
      const int fidx = schema_->FieldIndex(field_name);
      const auto make_uf = [&]() {
        std::vector<int> parent(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
        return parent;
      };
      std::vector<int> full = make_uf();
      std::vector<int> bound = make_uf();
      const auto find = [](std::vector<int>& uf, int x) {
        while (uf[static_cast<size_t>(x)] != x) {
          x = uf[static_cast<size_t>(x)] =
              uf[static_cast<size_t>(uf[static_cast<size_t>(x)])];
        }
        return x;
      };
      std::vector<bool> touched(static_cast<size_t>(n), false);
      std::vector<bool> anchored(static_cast<size_t>(n), false);
      for (const EqualityJoin& e : edges) {
        touched[static_cast<size_t>(e.left_class)] = true;
        touched[static_cast<size_t>(e.right_class)] = true;
        full[static_cast<size_t>(find(full, e.left_class))] =
            find(full, e.right_class);
        const bool lo = optional[static_cast<size_t>(e.left_class)];
        const bool ro = optional[static_cast<size_t>(e.right_class)];
        if (!lo && !ro) {
          bound[static_cast<size_t>(find(bound, e.left_class))] =
              find(bound, e.right_class);
        } else if (lo != ro) {
          anchored[static_cast<size_t>(lo ? e.left_class
                                          : e.right_class)] = true;
        }
      }

      const auto add_edge = [&](int a, int b) {
        const std::string& field = schema_->field(fidx).name;
        pattern_->multi_predicates.push_back(exprs::Eq(
            Expr::AttrRef(a, fidx,
                          pattern_->classes[static_cast<size_t>(a)].alias,
                          field),
            Expr::AttrRef(b, fidx,
                          pattern_->classes[static_cast<size_t>(b)].alias,
                          field)));
      };

      // Representative always-bound class per full component.
      std::map<int, int> rep;
      for (int i = 0; i < n; ++i) {
        if (!touched[static_cast<size_t>(i)] ||
            optional[static_cast<size_t>(i)]) {
          continue;
        }
        const int root = find(full, i);
        if (rep.count(root) == 0) rep[root] = i;
      }
      for (int i = 0; i < n; ++i) {
        if (!touched[static_cast<size_t>(i)]) continue;
        const int root = find(full, i);
        auto it = rep.find(root);
        if (it == rep.end() || it->second == i) continue;
        const int r = it->second;
        if (optional[static_cast<size_t>(i)]) {
          if (!anchored[static_cast<size_t>(i)]) {
            add_edge(i, r);
            anchored[static_cast<size_t>(i)] = true;
          }
        } else if (find(bound, i) != find(bound, r)) {
          add_edge(i, r);
          bound[static_cast<size_t>(find(bound, i))] = find(bound, r);
        }
      }
    }
  }

  // Union-find partition detection over same-field equality predicates.
  void DetectPartition() {
    const int n = pattern_->num_classes();
    if (n < 2) return;
    std::map<std::string, std::vector<size_t>> by_field;  // pred indices
    for (size_t i = 0; i < pattern_->multi_predicates.size(); ++i) {
      auto eq = AsEqualityJoin(pattern_->multi_predicates[i]);
      if (!eq.has_value()) continue;
      if (eq->left_field != eq->right_field) continue;
      by_field[schema_->field(eq->left_field).name].push_back(i);
    }
    // Optional classes may be unbound in a match, so equality is NOT
    // transitive through them: A.x=B.x AND B.x=C.x with !B does not
    // force A.x=C.x when no B occurs. Connectivity is therefore
    // computed over always-bound classes only, and each optional class
    // must have a direct edge to an always-bound one (then "same
    // partition" is exactly what its predicates assert).
    const std::vector<bool> optional = pattern_->OptionalClasses();
    const auto optional_cls = [&](int c) {
      return optional[static_cast<size_t>(c)];
    };
    for (auto& [field_name, preds] : by_field) {
      std::vector<int> parent(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
      std::function<int(int)> find = [&](int x) {
        while (parent[static_cast<size_t>(x)] != x) {
          x = parent[static_cast<size_t>(x)] =
              parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
        }
        return x;
      };
      std::vector<bool> anchored(static_cast<size_t>(n), false);
      for (size_t pi : preds) {
        auto eq = AsEqualityJoin(pattern_->multi_predicates[pi]);
        const bool lo = optional_cls(eq->left_class);
        const bool ro = optional_cls(eq->right_class);
        if (!lo && !ro) {
          parent[static_cast<size_t>(find(eq->left_class))] =
              find(eq->right_class);
        } else if (lo != ro) {
          anchored[static_cast<size_t>(lo ? eq->left_class
                                          : eq->right_class)] = true;
        }
        // optional-optional edges neither connect nor anchor.
      }
      bool all = true;
      int root = -1;
      for (int i = 0; i < n; ++i) {
        if (optional_cls(i)) {
          if (!anchored[static_cast<size_t>(i)]) all = false;
          continue;
        }
        if (root < 0) {
          root = find(i);
        } else if (find(i) != root) {
          all = false;
        }
        if (!all) break;
      }
      if (!all || root < 0) continue;
      // Found a full-coverage key: install the partition spec and drop
      // the now-implicit equality predicates.
      PartitionSpec spec;
      spec.field_name = field_name;
      const int fidx = schema_->FieldIndex(field_name);
      spec.field_indices.assign(static_cast<size_t>(n), fidx);
      pattern_->partition = std::move(spec);
      std::vector<ExprPtr> remaining;
      for (size_t i = 0; i < pattern_->multi_predicates.size(); ++i) {
        bool drop = false;
        for (size_t pi : preds) {
          if (pi == i) {
            drop = true;
            break;
          }
        }
        if (!drop) remaining.push_back(pattern_->multi_predicates[i]);
      }
      pattern_->multi_predicates = std::move(remaining);
      return;
    }
  }

  Status ResolveReturn(const std::vector<UExprPtr>& items) {
    if (items.empty()) {
      // Default: every positive class.
      for (int i = 0; i < pattern_->num_classes(); ++i) {
        const EventClass& ec = pattern_->classes[static_cast<size_t>(i)];
        if (!ec.negated) {
          pattern_->return_items.push_back(ReturnItem{nullptr, i, ec.alias});
        }
      }
      return Status::OK();
    }
    for (const UExprPtr& u : items) {
      if (u->kind == UExprKind::kAttr && u->field.empty()) {
        auto it = aliases_.find(u->alias);
        if (it == aliases_.end()) {
          return Status::SemanticError("unknown event class '" + u->alias +
                                       "' in RETURN")
              .WithErrorCode(errc::kTypeUnknownAlias)
              .WithLocation(u->line, u->column);
        }
        pattern_->return_items.push_back(
            ReturnItem{nullptr, it->second.class_idx, u->alias});
        continue;
      }
      ZS_ASSIGN_OR_RETURN(ExprPtr e, Resolve(u));
      pattern_->return_items.push_back(ReturnItem{e, -1, e->ToString()});
    }
    return Status::OK();
  }

  SchemaPtr schema_;
  AnalyzerOptions options_;
  Pattern* pattern_ = nullptr;
  std::unordered_map<std::string, AliasInfo> aliases_;
};

}  // namespace

Result<PatternPtr> Analyze(const ParsedQuery& query, SchemaPtr schema,
                           const AnalyzerOptions& options) {
  AnalyzerImpl impl(std::move(schema), options);
  return impl.Run(query);
}

Result<PatternPtr> AnalyzeQuery(const std::string& text, SchemaPtr schema,
                                const AnalyzerOptions& options) {
  ZS_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  return Analyze(parsed, std::move(schema), options);
}

}  // namespace zstream
