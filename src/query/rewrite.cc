#include "query/rewrite.h"

namespace zstream {

namespace {

// Per-operator weights encoding C_DIS < C_SEQ < C_CON (Section 5.2.1).
int OpWeight(ParseOp op) {
  switch (op) {
    case ParseOp::kClass: return 0;
    case ParseOp::kDisj: return 1;
    case ParseOp::kSeq: return 2;
    case ParseOp::kConj: return 3;
    case ParseOp::kNeg: return 1;
    case ParseOp::kKleene: return 2;
  }
  return 0;
}

int WeightOf(const ParseNodePtr& node) {
  int w = 0;
  if (node->op == ParseOp::kSeq || node->op == ParseOp::kConj ||
      node->op == ParseOp::kDisj) {
    w = (static_cast<int>(node->children.size()) - 1) * OpWeight(node->op);
  } else {
    w = OpWeight(node->op);
  }
  for (const auto& c : node->children) w += WeightOf(c);
  return w;
}

// Whether `candidate` is preferable to `current` under the paper's
// acceptance rule.
bool Preferable(const ParseNodePtr& candidate, const ParseNodePtr& current) {
  const int c_ops = candidate->OperatorCount();
  const int n_ops = current->OperatorCount();
  if (c_ops != n_ops) return c_ops < n_ops;
  return WeightOf(candidate) < WeightOf(current);
}

struct Rewriter {
  std::vector<std::string>* log;

  ParseNodePtr Rewrite(const ParseNodePtr& node) {
    if (node->is_class()) return node;

    // Rewrite children first.
    std::vector<ParseNodePtr> kids;
    kids.reserve(node->children.size());
    bool changed = false;
    for (const auto& c : node->children) {
      ParseNodePtr rc = Rewrite(c);
      changed |= (rc != c);
      kids.push_back(std::move(rc));
    }
    ParseNodePtr cur =
        changed ? Rebuild(node, std::move(kids)) : node;

    cur = Flatten(cur);
    cur = CollapseSingleton(cur);
    cur = DoubleNegation(cur);
    cur = DeMorgan(cur);
    return cur;
  }

  static ParseNodePtr Rebuild(const ParseNodePtr& proto,
                              std::vector<ParseNodePtr> kids) {
    switch (proto->op) {
      case ParseOp::kNeg:
        return ParseNode::Neg(kids[0]);
      case ParseOp::kKleene:
        return ParseNode::Kleene(kids[0], proto->kleene, proto->kleene_count);
      default:
        return ParseNode::Make(proto->op, std::move(kids));
    }
  }

  ParseNodePtr Flatten(const ParseNodePtr& node) {
    if (node->op != ParseOp::kSeq && node->op != ParseOp::kConj &&
        node->op != ParseOp::kDisj) {
      return node;
    }
    bool any = false;
    for (const auto& c : node->children) {
      if (c->op == node->op) {
        any = true;
        break;
      }
    }
    if (!any) return node;
    std::vector<ParseNodePtr> kids;
    for (const auto& c : node->children) {
      if (c->op == node->op) {
        kids.insert(kids.end(), c->children.begin(), c->children.end());
      } else {
        kids.push_back(c);
      }
    }
    log->push_back("flatten(" + node->ToString() + ")");
    return ParseNode::Make(node->op, std::move(kids));
  }

  ParseNodePtr CollapseSingleton(const ParseNodePtr& node) {
    if ((node->op == ParseOp::kSeq || node->op == ParseOp::kConj ||
         node->op == ParseOp::kDisj) &&
        node->children.size() == 1) {
      return node->children[0];
    }
    return node;
  }

  ParseNodePtr DoubleNegation(const ParseNodePtr& node) {
    if (node->op == ParseOp::kNeg &&
        node->children[0]->op == ParseOp::kNeg) {
      log->push_back("double-negation(" + node->ToString() + ")");
      return node->children[0]->children[0];
    }
    return node;
  }

  // Groups >= 2 negated conjuncts: X & !B & !C  ->  X & !(B|C).
  ParseNodePtr DeMorgan(const ParseNodePtr& node) {
    if (node->op != ParseOp::kConj) return node;
    std::vector<ParseNodePtr> negs;
    std::vector<ParseNodePtr> rest;
    for (const auto& c : node->children) {
      (c->op == ParseOp::kNeg ? negs : rest).push_back(c);
    }
    if (negs.size() < 2) return node;

    std::vector<ParseNodePtr> union_kids;
    union_kids.reserve(negs.size());
    for (const auto& n : negs) union_kids.push_back(n->children[0]);
    ParseNodePtr merged =
        ParseNode::Neg(ParseNode::Make(ParseOp::kDisj, std::move(union_kids)));

    ParseNodePtr candidate;
    if (rest.empty()) {
      candidate = merged;
    } else {
      rest.push_back(merged);
      candidate = ParseNode::Make(ParseOp::kConj, std::move(rest));
      candidate = CollapseSingleton(candidate);
    }
    if (!Preferable(candidate, node)) return node;
    log->push_back("de-morgan(" + node->ToString() + " -> " +
                   candidate->ToString() + ")");
    return candidate;
  }
};

}  // namespace

int OperatorWeight(const ParseNodePtr& node) { return WeightOf(node); }

RewriteResult RewritePattern(const ParseNodePtr& root) {
  RewriteResult result;
  result.node = root;
  Rewriter rw{&result.applied};
  // Iterate to a fixpoint; each pass strictly simplifies, so this
  // terminates quickly.
  for (int pass = 0; pass < 8; ++pass) {
    ParseNodePtr next = rw.Rewrite(result.node);
    if (next == result.node) break;
    result.node = next;
  }
  return result;
}

}  // namespace zstream
