// Stable, machine-readable diagnostic codes for the query/DDL frontend.
//
// Codes are part of the public API contract: tools (and tests) match on
// them, so existing codes never change meaning. Naming scheme:
//   ZS-Lxxxx  lexer          ZS-Pxxxx  pattern-query parser
//   ZS-Dxxxx  DDL parser     ZS-Sxxxx  semantic analyzer / catalog
//   ZS-Nxxxx  network protocol (src/net/)
// Attach with Status::WithErrorCode; source coordinates ride along via
// Status::WithLocation (1-based line/column).
#ifndef ZSTREAM_QUERY_ERROR_CODES_H_
#define ZSTREAM_QUERY_ERROR_CODES_H_

namespace zstream::errc {

// Lexer.
inline constexpr char kLexUnexpectedChar[] = "ZS-L0001";
inline constexpr char kLexUnterminatedString[] = "ZS-L0002";

// Pattern-query parser.
inline constexpr char kParseExpectedToken[] = "ZS-P0001";   // generic
inline constexpr char kParseExpectedPattern[] = "ZS-P0002";  // class or '('
inline constexpr char kParseExpectedWithin[] = "ZS-P0003";
inline constexpr char kParseTrailingInput[] = "ZS-P0004";
inline constexpr char kParseBadDuration[] = "ZS-P0005";
inline constexpr char kParseBadClosure[] = "ZS-P0006";
inline constexpr char kParseExpectedExpr[] = "ZS-P0007";
inline constexpr char kParseExpectedPatternKw[] = "ZS-P0008";

// DDL parser.
inline constexpr char kDdlUnknownStatement[] = "ZS-D0001";
inline constexpr char kDdlExpectedIdent[] = "ZS-D0002";
inline constexpr char kDdlExpectedToken[] = "ZS-D0003";
inline constexpr char kDdlUnknownType[] = "ZS-D0004";
inline constexpr char kDdlDuplicateField[] = "ZS-D0005";
inline constexpr char kDdlEmptySchema[] = "ZS-D0006";

// Catalog / execution of DDL.
inline constexpr char kCatalogDuplicateStream[] = "ZS-S0001";
inline constexpr char kCatalogUnknownStream[] = "ZS-S0002";
inline constexpr char kCatalogDuplicateQuery[] = "ZS-S0003";
inline constexpr char kCatalogUnknownQuery[] = "ZS-S0004";
inline constexpr char kCatalogStreamInUse[] = "ZS-S0005";

// Network protocol (src/net/). These travel inside kError frames, so a
// client can match on them the same way a local caller matches on the
// query-frontend codes.
inline constexpr char kNetBadVersion[] = "ZS-N0001";
inline constexpr char kNetUnknownType[] = "ZS-N0002";
inline constexpr char kNetOversizedFrame[] = "ZS-N0003";
inline constexpr char kNetTruncatedPayload[] = "ZS-N0004";
inline constexpr char kNetEmptyPayload[] = "ZS-N0005";
inline constexpr char kNetSchemaMismatch[] = "ZS-N0006";
inline constexpr char kNetBatchTooLarge[] = "ZS-N0007";
inline constexpr char kNetUnexpectedMessage[] = "ZS-N0008";

}  // namespace zstream::errc

#endif  // ZSTREAM_QUERY_ERROR_CODES_H_
