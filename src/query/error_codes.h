// Stable, machine-readable diagnostic codes for the query/DDL frontend.
//
// Codes are part of the public API contract: tools (and tests) match on
// them, so existing codes never change meaning. Naming scheme:
//   ZS-Lxxxx  lexer          ZS-Pxxxx  pattern-query parser
//   ZS-Dxxxx  DDL parser     ZS-Sxxxx  semantic analyzer / catalog
//   ZS-Nxxxx  network protocol (src/net/)
//   ZS-Txxxx  expression typechecker (src/verify/typecheck.*)
//   ZS-Vxxxx  plan verifier (src/verify/plan_verifier.*)
//   ZS-Wxxxx  query linter warnings (src/verify/lint.*)
// Attach with Status::WithErrorCode; source coordinates ride along via
// Status::WithLocation (1-based line/column).
#ifndef ZSTREAM_QUERY_ERROR_CODES_H_
#define ZSTREAM_QUERY_ERROR_CODES_H_

namespace zstream::errc {

// Lexer.
inline constexpr char kLexUnexpectedChar[] = "ZS-L0001";
inline constexpr char kLexUnterminatedString[] = "ZS-L0002";

// Pattern-query parser.
inline constexpr char kParseExpectedToken[] = "ZS-P0001";   // generic
inline constexpr char kParseExpectedPattern[] = "ZS-P0002";  // class or '('
inline constexpr char kParseExpectedWithin[] = "ZS-P0003";
inline constexpr char kParseTrailingInput[] = "ZS-P0004";
inline constexpr char kParseBadDuration[] = "ZS-P0005";
inline constexpr char kParseBadClosure[] = "ZS-P0006";
inline constexpr char kParseExpectedExpr[] = "ZS-P0007";
inline constexpr char kParseExpectedPatternKw[] = "ZS-P0008";

// DDL parser.
inline constexpr char kDdlUnknownStatement[] = "ZS-D0001";
inline constexpr char kDdlExpectedIdent[] = "ZS-D0002";
inline constexpr char kDdlExpectedToken[] = "ZS-D0003";
inline constexpr char kDdlUnknownType[] = "ZS-D0004";
inline constexpr char kDdlDuplicateField[] = "ZS-D0005";
inline constexpr char kDdlEmptySchema[] = "ZS-D0006";

// Catalog / execution of DDL.
inline constexpr char kCatalogDuplicateStream[] = "ZS-S0001";
inline constexpr char kCatalogUnknownStream[] = "ZS-S0002";
inline constexpr char kCatalogDuplicateQuery[] = "ZS-S0003";
inline constexpr char kCatalogUnknownQuery[] = "ZS-S0004";
inline constexpr char kCatalogStreamInUse[] = "ZS-S0005";

// Network protocol (src/net/). These travel inside kError frames, so a
// client can match on them the same way a local caller matches on the
// query-frontend codes.
inline constexpr char kNetBadVersion[] = "ZS-N0001";
inline constexpr char kNetUnknownType[] = "ZS-N0002";
inline constexpr char kNetOversizedFrame[] = "ZS-N0003";
inline constexpr char kNetTruncatedPayload[] = "ZS-N0004";
inline constexpr char kNetEmptyPayload[] = "ZS-N0005";
inline constexpr char kNetSchemaMismatch[] = "ZS-N0006";
inline constexpr char kNetBatchTooLarge[] = "ZS-N0007";
inline constexpr char kNetUnexpectedMessage[] = "ZS-N0008";

// Expression typechecker (src/verify/typecheck.*). Raised before any
// event flows: these are the static versions of errors that previously
// surfaced (or silently nulled out) at eval time.
inline constexpr char kTypeUnknownAttribute[] = "ZS-T0001";
inline constexpr char kTypeUnknownAlias[] = "ZS-T0002";
inline constexpr char kTypeIncomparable[] = "ZS-T0003";      // e.g. int < string
inline constexpr char kTypeNonNumericArith[] = "ZS-T0004";   // e.g. 'x' + 1
inline constexpr char kTypeNonBoolLogic[] = "ZS-T0005";      // AND/OR/NOT operand
inline constexpr char kTypeAggNonKleene[] = "ZS-T0006";      // sum(B.v), B not B+
inline constexpr char kTypeAggNonNumeric[] = "ZS-T0007";     // sum over string
inline constexpr char kTypeNonBoolPredicate[] = "ZS-T0008";  // WHERE 1 + 2
inline constexpr char kTypeBadClassIndex[] = "ZS-T0009";     // hand-built exprs
inline constexpr char kTypeAggMissingField[] = "ZS-T0010";   // count() needs attr

// Plan verifier (src/verify/plan_verifier.*). One stable code per named
// invariant; verify::Invariants() enumerates the full registry.
inline constexpr char kVerifyEmptyPlan[] = "ZS-V0001";
inline constexpr char kVerifyCoverage[] = "ZS-V0002";
inline constexpr char kVerifyNodeShape[] = "ZS-V0003";
inline constexpr char kVerifyStructure[] = "ZS-V0004";
inline constexpr char kVerifyNseqLeaf[] = "ZS-V0005";
inline constexpr char kVerifyNseqAdjacency[] = "ZS-V0006";
inline constexpr char kVerifyNseqPredScope[] = "ZS-V0007";
inline constexpr char kVerifyKseqShape[] = "ZS-V0008";
inline constexpr char kVerifyKseqAdjacency[] = "ZS-V0009";
inline constexpr char kVerifyKseqPredScope[] = "ZS-V0010";
inline constexpr char kVerifyKleeneLegal[] = "ZS-V0011";
inline constexpr char kVerifyNegationHandled[] = "ZS-V0012";
inline constexpr char kVerifyNegFilterTarget[] = "ZS-V0013";
inline constexpr char kVerifyWindowPositive[] = "ZS-V0014";
inline constexpr char kVerifyPartitionKey[] = "ZS-V0015";
inline constexpr char kVerifyPredicateScope[] = "ZS-V0016";
inline constexpr char kVerifyReturnItems[] = "ZS-V0017";
inline constexpr char kVerifyNegBranch[] = "ZS-V0018";

// Query linter (src/verify/lint.*). Warnings, never errors: the query
// still runs, but almost certainly doesn't mean what the author hoped.
inline constexpr char kLintUnsatisfiable[] = "ZS-W0001";
inline constexpr char kLintUnreferencedAlias[] = "ZS-W0002";
inline constexpr char kLintCartesian[] = "ZS-W0003";
inline constexpr char kLintTautology[] = "ZS-W0004";
inline constexpr char kLintDuplicateConjunct[] = "ZS-W0005";

}  // namespace zstream::errc

#endif  // ZSTREAM_QUERY_ERROR_CODES_H_
