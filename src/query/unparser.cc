// Serializes parse-level ASTs back to query text (the inverse of
// query/parser.cc). Used by PatternBuilder::ToQueryString and by SHOW
// QUERIES to render stored queries canonically.
//
// The output is deliberately conservative: every binary/unary operator
// application is parenthesized, so operator precedence never changes
// across a round-trip, and numeric literals use fixed notation because
// the lexer has no scientific-notation form.
#include <charconv>
#include <sstream>

#include "query/ast.h"

namespace zstream {

namespace {

std::string LiteralToString(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return std::to_string(v.int64_value());
    case ValueType::kDouble: {
      // Shortest fixed-notation string that round-trips through the
      // lexer's [digits].[digits] form. Fixed shortest-round-trip needs
      // up to ~310 integer digits (DBL_MAX) or ~1080 total for
      // subnormals, hence the buffer size.
      char buf[1100];
      const auto res = std::to_chars(buf, buf + sizeof(buf),
                                     v.double_value(),
                                     std::chars_format::fixed);
      if (res.ec != std::errc()) return std::to_string(v.double_value());
      std::string out(buf, res.ptr);
      if (out.find('.') == std::string::npos) out += ".0";
      return out;
    }
    case ValueType::kString: {
      // Mirror the lexer's SQL-style quoting: ' doubles to ''.
      std::string out = "'";
      for (const char c : v.string_value()) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += '\'';
      return out;
    }
    case ValueType::kBool:
      // The lexer has no boolean literal; encode as an always-decidable
      // comparison.
      return v.bool_value() ? "(1 = 1)" : "(1 = 0)";
    case ValueType::kNull:
      break;
  }
  return "0";  // unreachable for parser/builder-produced literals
}

const char* BinaryOpToken(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
  }
  return "?";
}

void Render(const UExpr& e, std::ostream& os) {
  switch (e.kind) {
    case UExprKind::kLiteral:
      os << LiteralToString(e.literal);
      break;
    case UExprKind::kAttr:
      os << e.alias;
      if (!e.field.empty()) os << "." << e.field;
      break;
    case UExprKind::kAgg:
      os << e.agg_name << "(" << e.alias;
      if (!e.field.empty()) os << "." << e.field;
      os << ")";
      break;
    case UExprKind::kUnary:
      // NOT parses above the comparison level, so the parentheses must
      // enclose the whole application — "(NOT x)", not "NOT (x)" —
      // or reparsing would rebind NOT over an enclosing comparison.
      os << (e.un_op == UnaryOp::kNot ? "(NOT (" : "(-(");
      Render(*e.left, os);
      os << "))";
      break;
    case UExprKind::kBinary:
      os << "(";
      Render(*e.left, os);
      os << " " << BinaryOpToken(e.bin_op) << " ";
      Render(*e.right, os);
      os << ")";
      break;
  }
}

}  // namespace

std::string UExprToString(const UExpr& expr) {
  std::ostringstream os;
  Render(expr, os);
  return os.str();
}

std::string ToQueryString(const ParsedQuery& query) {
  std::ostringstream os;
  os << "PATTERN " << query.pattern->ToString();
  if (query.where != nullptr) {
    os << " WHERE " << UExprToString(*query.where);
  }
  os << " WITHIN " << query.window;
  if (!query.return_items.empty()) {
    os << " RETURN ";
    for (size_t i = 0; i < query.return_items.size(); ++i) {
      if (i > 0) os << ", ";
      os << UExprToString(*query.return_items[i]);
    }
  }
  return os.str();
}

}  // namespace zstream
