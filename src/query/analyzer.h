// Semantic analysis: parsed query -> logical Pattern.
//
// Responsibilities (Sections 4.1 and 5.2):
//   * apply the rule-based rewrites;
//   * assign class indices in temporal (pattern) order and fold
//     negation / Kleene wrappers into class markers;
//   * resolve WHERE into typed expressions, split conjuncts and classify
//     them: single-class predicates push down to leaf buffers,
//     multi-class predicates attach to internal nodes;
//   * detect a full-coverage equality partition key (Figure 4);
//   * resolve the RETURN projection.
#ifndef ZSTREAM_QUERY_ANALYZER_H_
#define ZSTREAM_QUERY_ANALYZER_H_

#include <string>

#include "common/result.h"
#include "plan/pattern.h"
#include "query/ast.h"

namespace zstream {

struct AnalyzerOptions {
  bool apply_rewrites = true;
  bool detect_partition = true;
};

/// Analyzes an already-parsed query against the input stream's schema.
Result<PatternPtr> Analyze(const ParsedQuery& query, SchemaPtr schema,
                           const AnalyzerOptions& options = {});

/// Parses and analyzes in one step.
Result<PatternPtr> AnalyzeQuery(const std::string& text, SchemaPtr schema,
                                const AnalyzerOptions& options = {});

}  // namespace zstream

#endif  // ZSTREAM_QUERY_ANALYZER_H_
