#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "query/error_codes.h"

namespace zstream {

namespace {
/// Non-throwing number conversion: ZStream's query path is
/// exception-free, and std::stod throws out_of_range on overflowing or
/// subnormal literals (e.g. a 300-digit constant). strtod saturates to
/// ±inf / 0 instead, which downstream arithmetic handles.
double ParseNumber(const std::string& num) {
  return std::strtod(num.c_str(), nullptr);
}
}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  int line = 1;
  size_t line_start = 0;  // offset of the current line's first character
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') {
        ++line;
        line_start = i + 1;
      }
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    tok.line = line;
    tok.column = static_cast<int>(i - line_start) + 1;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      tok.type = TokenType::kIdent;
      tok.text = text.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      const std::string num = text.substr(i, j - i);
      if (j < n && text[j] == '%') {
        tok.type = TokenType::kPercent;
        tok.number = ParseNumber(num) / 100.0;
        ++j;
      } else {
        tok.type = is_float ? TokenType::kFloat : TokenType::kInt;
        tok.number = ParseNumber(num);
      }
      i = j;
    } else if (c == '\'') {
      // SQL-style quoting: '' inside a literal is one quote character.
      size_t j = i + 1;
      std::string s;
      bool closed = false;
      while (j < n) {
        if (text[j] == '\'') {
          if (j + 1 < n && text[j + 1] == '\'') {
            s += '\'';
            j += 2;
            continue;
          }
          closed = true;
          break;
        }
        if (text[j] == '\n') {
          ++line;
          line_start = j + 1;
        }
        s += text[j++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal")
            .WithErrorCode(errc::kLexUnterminatedString)
            .WithLocation(tok.line, tok.column);
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      i = j + 1;
    } else {
      switch (c) {
        case ';': tok.type = TokenType::kSemicolon; ++i; break;
        case '&': tok.type = TokenType::kAmp; ++i; break;
        case '|': tok.type = TokenType::kPipe; ++i; break;
        case '(': tok.type = TokenType::kLParen; ++i; break;
        case ')': tok.type = TokenType::kRParen; ++i; break;
        case ',': tok.type = TokenType::kComma; ++i; break;
        case '.': tok.type = TokenType::kDot; ++i; break;
        case '*': tok.type = TokenType::kStar; ++i; break;
        case '+': tok.type = TokenType::kPlus; ++i; break;
        case '-': tok.type = TokenType::kMinus; ++i; break;
        case '/': tok.type = TokenType::kSlash; ++i; break;
        case '%': tok.type = TokenType::kPercentOp; ++i; break;
        case '^': tok.type = TokenType::kCaret; ++i; break;
        case '=': tok.type = TokenType::kEq; ++i; break;
        case '!':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kBang;
            ++i;
          }
          break;
        case '<':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && text[i + 1] == '>') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kGe;
            i += 2;
          } else {
            tok.type = TokenType::kGt;
            ++i;
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "'")
              .WithErrorCode(errc::kLexUnexpectedChar)
              .WithLocation(tok.line, tok.column);
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  end.line = line;
  end.column = static_cast<int>(n - line_start) + 1;
  out.push_back(end);
  return out;
}

}  // namespace zstream
