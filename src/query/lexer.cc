#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace zstream {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      tok.type = TokenType::kIdent;
      tok.text = text.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      const std::string num = text.substr(i, j - i);
      if (j < n && text[j] == '%') {
        tok.type = TokenType::kPercent;
        tok.number = std::stod(num) / 100.0;
        ++j;
      } else {
        tok.type = is_float ? TokenType::kFloat : TokenType::kInt;
        tok.number = std::stod(num);
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      while (j < n && text[j] != '\'') s += text[j++];
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      i = j + 1;
    } else {
      switch (c) {
        case ';': tok.type = TokenType::kSemicolon; ++i; break;
        case '&': tok.type = TokenType::kAmp; ++i; break;
        case '|': tok.type = TokenType::kPipe; ++i; break;
        case '(': tok.type = TokenType::kLParen; ++i; break;
        case ')': tok.type = TokenType::kRParen; ++i; break;
        case ',': tok.type = TokenType::kComma; ++i; break;
        case '.': tok.type = TokenType::kDot; ++i; break;
        case '*': tok.type = TokenType::kStar; ++i; break;
        case '+': tok.type = TokenType::kPlus; ++i; break;
        case '-': tok.type = TokenType::kMinus; ++i; break;
        case '/': tok.type = TokenType::kSlash; ++i; break;
        case '%': tok.type = TokenType::kPercentOp; ++i; break;
        case '^': tok.type = TokenType::kCaret; ++i; break;
        case '=': tok.type = TokenType::kEq; ++i; break;
        case '!':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kBang;
            ++i;
          }
          break;
        case '<':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && text[i + 1] == '>') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kGe;
            i += 2;
          } else {
            tok.type = TokenType::kGt;
            ++i;
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(i));
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace zstream
