// Recursive-descent parser for the ZStream query language:
//
//   PATTERN <pattern>  [WHERE <predicate>]  WITHIN <duration>
//   [RETURN <item>, ...]
//
// Pattern grammar ( ';' binds loosest, then '|', then '&', then prefix
// '!' and postfix closure markers ):
//
//   pattern  := term (';' term)*
//   term     := factor ('|' factor)*
//   factor   := unary ('&' unary)*
//   unary    := '!' unary | primary
//   primary  := IDENT closure? | '(' pattern ')' closure?
//   closure  := '*' | '+' | '^' INT
//
// Durations accept bare numbers (internal units) or number + unit where
// unit ∈ {ms, sec(s), min(s), hour(s)}; 1 internal unit == 1 ms.
#ifndef ZSTREAM_QUERY_PARSER_H_
#define ZSTREAM_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "query/lexer.h"

namespace zstream {

/// Parses a full query; parse errors carry a stable error code (see
/// query/error_codes.h) and the 1-based line/column of the offending
/// token (Status::error_code / line / column).
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Parses a full query from an already-tokenized stream, starting at
/// `start` and consuming through the final kEnd token. The DDL layer
/// uses this for the query body of `CREATE QUERY ... AS <query>` so
/// diagnostics keep their coordinates in the full statement text.
Result<ParsedQuery> ParseQueryTokens(std::vector<Token> tokens, size_t start);

/// Parses just a pattern expression (handy for tests).
Result<ParseNodePtr> ParsePattern(const std::string& text);

/// Parses just a predicate expression (handy for tests).
Result<UExprPtr> ParsePredicate(const std::string& text);

}  // namespace zstream

#endif  // ZSTREAM_QUERY_PARSER_H_
