// Tokenizer for the ZStream query language (Section 3).
#ifndef ZSTREAM_QUERY_LEXER_H_
#define ZSTREAM_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace zstream {

enum class TokenType : char {
  kIdent,      // IBM, T1, price
  kInt,        // 200
  kFloat,      // 1.5
  kPercent,    // 20%  (value stored as fraction, 0.20)
  kString,     // 'Google'
  kSemicolon,  // ;
  kAmp,        // &
  kPipe,       // |
  kBang,       // !
  kLParen, kRParen, kComma, kDot,
  kStar, kPlus, kMinus, kSlash, kPercentOp, kCaret,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier / string contents
  double number = 0.0;  // kInt / kFloat / kPercent
  size_t offset = 0;    // byte offset in the query text (for errors)
  int line = 1;         // 1-based source line of the first character
  int column = 1;       // 1-based source column of the first character

  bool IsKeyword(const char* kw) const;
};

/// Tokenizes `text`; the final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace zstream

#endif  // ZSTREAM_QUERY_LEXER_H_
