// Cost-based plan search (Section 5.2.3, Algorithm 5).
//
// For sequential patterns the planner runs the dynamic program over
// contiguous class intervals — including bushy shapes — using the cost
// model for operator costs, so DP results agree with exhaustive
// enumeration by construction. Negated classes either fuse with their
// right neighbor as an NSEQ unit (pushed down) or are handled by a NEG
// filter on top; the planner costs both and keeps the cheaper. One
// Kleene class fuses with its neighbors into a trinary KSEQ unit.
//
// Non-sequence patterns (CONJ/DISJ structure) fall back to the
// structural left-deep shape; reordering them is future work the paper
// also does not evaluate.
#ifndef ZSTREAM_OPT_PLANNER_H_
#define ZSTREAM_OPT_PLANNER_H_

#include <vector>

#include "opt/cost_model.h"
#include "opt/stats.h"
#include "plan/pattern.h"
#include "plan/physical_plan.h"

namespace zstream {

struct PlannerOptions {
  CostModelParams cost_params;
  /// Also consider evaluating negation as a top filter and keep the
  /// cheaper alternative (Section 6.4 compares exactly these two).
  bool consider_negation_top = true;
};

/// \brief Searches for the cheapest physical plan for a pattern.
class Planner {
 public:
  Planner(PatternPtr pattern, const StatsCatalog* stats,
          PlannerOptions options = {});

  /// Algorithm 5: O(n^3) dynamic program over contiguous intervals.
  Result<PhysicalPlan> OptimalPlan();

  /// Test oracle: enumerates every valid shape and picks the cheapest.
  /// Exponential; intended for small patterns in tests.
  Result<PhysicalPlan> ExhaustiveOptimal();

  /// All valid tree shapes over the pattern's DP units (negation pushed
  /// down). Exponential (Catalan); for tests and ablations.
  Result<std::vector<PhysicalPlan>> EnumerateShapes();

  /// Planning time of the last OptimalPlan() call, in microseconds.
  double last_plan_micros() const { return last_plan_micros_; }

 private:
  // One DP unit: an atomic sub-plan covering a contiguous class range.
  struct Unit {
    PhysNodePtr plan;
  };

  Result<std::vector<Unit>> BuildUnits(const std::vector<bool>& push_neg);
  Result<PhysicalPlan> PlanWithNegationChoice(
      const std::vector<bool>& push_neg);
  PhysNodePtr RunDp(const std::vector<Unit>& units, const CostModel& model);

  PatternPtr pattern_;
  const StatsCatalog* stats_;
  PlannerOptions options_;
  double last_plan_micros_ = 0.0;
};

}  // namespace zstream

#endif  // ZSTREAM_OPT_PLANNER_H_
