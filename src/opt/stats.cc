#include "opt/stats.h"

#include <algorithm>
#include <cmath>

namespace zstream {

double StatsCatalog::PairSel(int i, int j) const {
  auto it = pair_sel_.find(Key(i, j));
  return it == pair_sel_.end() ? 1.0 : it->second;
}

void StatsCatalog::SetPairSel(int i, int j, double sel) {
  pair_sel_[Key(i, j)] = sel;
}

double StatsCatalog::TimeSel(int i, int j) const {
  auto it = time_sel_.find(Key(i, j));
  return it == time_sel_.end() ? kDefaultTimeSelectivity : it->second;
}

void StatsCatalog::SetTimeSel(int i, int j, double sel) {
  time_sel_[Key(i, j)] = sel;
}

namespace {
double RelChange(double a, double b) {
  const double denom = std::max(std::abs(a), 1e-12);
  return std::abs(a - b) / denom;
}
}  // namespace

double StatsCatalog::MaxRelativeChange(const StatsCatalog& other) const {
  double drift = 0.0;
  const int n = std::min(num_classes(), other.num_classes());
  for (int i = 0; i < n; ++i) {
    drift = std::max(drift, RelChange(rate(i), other.rate(i)));
  }
  for (const auto& [key, sel] : pair_sel_) {
    drift = std::max(drift, RelChange(sel, other.PairSel(key.first,
                                                         key.second)));
  }
  for (const auto& [key, sel] : other.pair_sel_) {
    drift = std::max(drift, RelChange(PairSel(key.first, key.second), sel));
  }
  return drift;
}

WindowedClassStats::WindowedClassStats(int num_classes, int num_predicates,
                           Duration bucket_width, int num_buckets)
    : num_classes_(num_classes),
      num_predicates_(num_predicates),
      bucket_width_(std::max<Duration>(bucket_width, 1)),
      num_buckets_(static_cast<size_t>(std::max(num_buckets, 2))) {}

void WindowedClassStats::Roll(Timestamp ts) {
  if (buckets_.empty()) {
    Bucket b;
    b.start = ts;
    b.admits.assign(static_cast<size_t>(num_classes_), 0);
    b.pred_evals.assign(static_cast<size_t>(num_predicates_), 0);
    b.pred_passes.assign(static_cast<size_t>(num_predicates_), 0);
    buckets_.push_back(std::move(b));
    return;
  }
  while (ts >= buckets_.back().start + bucket_width_) {
    Bucket b;
    b.start = buckets_.back().start + bucket_width_;
    b.admits.assign(static_cast<size_t>(num_classes_), 0);
    b.pred_evals.assign(static_cast<size_t>(num_predicates_), 0);
    b.pred_passes.assign(static_cast<size_t>(num_predicates_), 0);
    buckets_.push_back(std::move(b));
    if (buckets_.size() > num_buckets_) buckets_.pop_front();
  }
}

void WindowedClassStats::OnEvent(Timestamp ts) {
  Roll(ts);
  ++buckets_.back().events;
  ++total_events_;
}

void WindowedClassStats::OnClassAdmit(int cls) {
  if (buckets_.empty()) return;
  ++buckets_.back().admits[static_cast<size_t>(cls)];
}

void WindowedClassStats::OnPredicateEval(int pred_idx, bool passed) {
  if (buckets_.empty() || pred_idx < 0 || pred_idx >= num_predicates_) return;
  ++buckets_.back().pred_evals[static_cast<size_t>(pred_idx)];
  if (passed) ++buckets_.back().pred_passes[static_cast<size_t>(pred_idx)];
}

StatsCatalog WindowedClassStats::Snapshot(const Pattern& pattern,
                                    const StatsCatalog& defaults) const {
  StatsCatalog out(pattern.num_classes(),
                   static_cast<double>(pattern.window));
  if (buckets_.empty()) return defaults;

  // Elapsed event-time covered by the retained buckets.
  const Timestamp begin = buckets_.front().start;
  const Timestamp end = buckets_.back().start + bucket_width_;
  const double elapsed = static_cast<double>(end - begin);
  if (elapsed <= 0) return defaults;

  std::vector<int64_t> admits(static_cast<size_t>(num_classes_), 0);
  std::vector<int64_t> evals(static_cast<size_t>(num_predicates_), 0);
  std::vector<int64_t> passes(static_cast<size_t>(num_predicates_), 0);
  for (const Bucket& b : buckets_) {
    for (int c = 0; c < num_classes_; ++c) {
      admits[static_cast<size_t>(c)] += b.admits[static_cast<size_t>(c)];
    }
    for (int p = 0; p < num_predicates_; ++p) {
      evals[static_cast<size_t>(p)] += b.pred_evals[static_cast<size_t>(p)];
      passes[static_cast<size_t>(p)] += b.pred_passes[static_cast<size_t>(p)];
    }
  }

  for (int c = 0; c < num_classes_; ++c) {
    const int64_t a = admits[static_cast<size_t>(c)];
    out.set_rate(c, a > 0 ? static_cast<double>(a) / elapsed
                          : defaults.rate(c));
  }

  // Fold per-predicate pass ratios into pairwise selectivities.
  std::map<std::pair<int, int>, double> pair_product;
  for (size_t p = 0; p < pattern.multi_predicates.size(); ++p) {
    const std::set<int> classes =
        ReferencedClasses(pattern.multi_predicates[p]);
    if (classes.size() < 2) continue;
    const int i = *classes.begin();
    const int j = *classes.rbegin();
    const auto key = i < j ? std::make_pair(i, j) : std::make_pair(j, i);
    double sel;
    if (evals[p] >= 32) {
      sel = static_cast<double>(passes[p]) / static_cast<double>(evals[p]);
      sel = std::max(sel, 1e-6);
    } else {
      sel = defaults.PairSel(i, j);
    }
    auto [it, inserted] = pair_product.emplace(key, sel);
    if (!inserted) it->second *= sel;
  }
  for (const auto& [key, sel] : pair_product) {
    out.SetPairSel(key.first, key.second, sel);
  }
  return out;
}

StatsCatalog MergeStatsCatalogs(const std::vector<StatsCatalog>& parts,
                                const std::vector<double>& weights) {
  ZS_DCHECK(!parts.empty());
  ZS_DCHECK(parts.size() == weights.size());
  const int n = parts.front().num_classes();
  StatsCatalog out(n, parts.front().window());

  double total_weight = 0.0;
  for (double w : weights) total_weight += w;

  for (int c = 0; c < n; ++c) {
    double rate = 0.0;
    for (const StatsCatalog& part : parts) rate += part.rate(c);
    out.set_rate(c, rate);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double pair_sel = 0.0;
      double time_sel = 0.0;
      for (size_t k = 0; k < parts.size(); ++k) {
        const double w =
            total_weight > 0.0 ? weights[k] / total_weight
                               : 1.0 / static_cast<double>(parts.size());
        pair_sel += w * parts[k].PairSel(i, j);
        time_sel += w * parts[k].TimeSel(i, j);
      }
      out.SetPairSel(i, j, pair_sel);
      out.SetTimeSel(i, j, time_sel);
    }
  }
  return out;
}

}  // namespace zstream
