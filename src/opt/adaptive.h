// Plan adaptation (Section 5.3).
//
// The engine maintains windowed statistics at the leaves. When any
// statistic drifts past threshold `t` relative to the values the current
// plan was chosen with, the controller re-runs the planner; the new plan
// is installed only when its predicted cost improves on the current
// plan's (re-estimated) cost by more than threshold `c`.
#ifndef ZSTREAM_OPT_ADAPTIVE_H_
#define ZSTREAM_OPT_ADAPTIVE_H_

#include <optional>

#include "opt/planner.h"

namespace zstream {

struct AdaptiveOptions {
  /// Statistic drift threshold `t` (relative change triggering a
  /// re-plan).
  double drift_threshold = 0.5;
  /// Improvement threshold `c`: switch only when
  /// cost(new) < cost(current) * (1 - c).
  double improvement_threshold = 0.1;
  /// Assembly rounds between statistic checks.
  int check_every_rounds = 8;
  CostModelParams cost_params;
};

/// \brief Decides when to re-plan and what to switch to.
class AdaptiveController {
 public:
  AdaptiveController(PatternPtr pattern, AdaptiveOptions options);

  /// Records the plan now running and the statistics it was chosen with.
  void OnPlanInstalled(const PhysicalPlan& plan, const StatsCatalog& stats);

  /// Returns a better plan under `current` statistics, or nullopt.
  /// Resets the drift baseline whenever a re-plan was evaluated.
  std::optional<PhysicalPlan> MaybeReplan(const StatsCatalog& current);

  int replan_evaluations() const { return replan_evaluations_; }

 private:
  PatternPtr pattern_;
  AdaptiveOptions options_;
  PhysicalPlan installed_;
  StatsCatalog installed_stats_;
  bool has_plan_ = false;
  int replan_evaluations_ = 0;
};

}  // namespace zstream

#endif  // ZSTREAM_OPT_ADAPTIVE_H_
