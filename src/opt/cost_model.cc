#include "opt/cost_model.h"

#include <algorithm>
#include <sstream>

#include "expr/analysis.h"

namespace zstream {

CostModel::CostModel(const Pattern* pattern, const StatsCatalog* stats,
                     CostModelParams params)
    : pattern_(pattern), stats_(stats), params_(params) {}

namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Boundary classes for the implicit time predicate between two covers:
// the last positive class on the left and the first positive class on
// the right.
int LastPositive(const Pattern& p, const std::vector<int>& cover) {
  for (auto it = cover.rbegin(); it != cover.rend(); ++it) {
    if (!p.classes[static_cast<size_t>(*it)].negated) return *it;
  }
  return cover.empty() ? -1 : cover.back();
}
int FirstPositive(const Pattern& p, const std::vector<int>& cover) {
  for (int c : cover) {
    if (!p.classes[static_cast<size_t>(c)].negated) return c;
  }
  return cover.empty() ? -1 : cover.front();
}

}  // namespace

void CostModel::CrossSelectivity(const std::vector<int>& left_cover,
                                 const std::vector<int>& right_cover,
                                 double* sel, int* num_preds,
                                 double* hashed_sel) const {
  *sel = 1.0;
  *num_preds = 0;
  *hashed_sel = 1.0;
  bool hashed_one = false;
  for (const ExprPtr& pred : pattern_->multi_predicates) {
    const std::set<int> classes = ReferencedClasses(pred);
    bool any_left = false;
    bool any_right = false;
    bool all_covered = true;
    for (int c : classes) {
      const bool in_l = Contains(left_cover, c);
      const bool in_r = Contains(right_cover, c);
      any_left |= in_l;
      any_right |= in_r;
      if (!in_l && !in_r) all_covered = false;
    }
    if (!all_covered || !any_left || !any_right) continue;
    // This predicate is evaluated at this operator.
    const int i = *classes.begin();
    const int j = *classes.rbegin();
    const double s = stats_->PairSel(i, j);
    // The engine hash-indexes the first equality predicate; mirror it.
    if (params_.assume_hashing && !hashed_one &&
        AsEqualityJoin(pred).has_value()) {
      *hashed_sel = s;
      hashed_one = true;
      *sel *= s;
      continue;
    }
    *sel *= s;
    *num_preds += 1;
  }
}

CostModel::Estimate CostModel::EstimateNode(const PhysNode* node) const {
  Estimate est;
  if (node == nullptr) return est;
  const Pattern& p = *pattern_;

  switch (node->op) {
    case PhysOp::kLeaf: {
      est.card = stats_->Card(node->class_idx);
      est.cost = 0.0;
      return est;
    }

    case PhysOp::kSeq: {
      const Estimate l = EstimateNode(node->children[0].get());
      const Estimate r = EstimateNode(node->children[1].get());
      const auto lcov = node->children[0]->CoveredClasses();
      const auto rcov = node->children[1]->CoveredClasses();
      const double pt =
          stats_->TimeSel(LastPositive(p, lcov), FirstPositive(p, rcov));
      double sel, hashed_sel;
      int n;
      CrossSelectivity(lcov, rcov, &sel, &n, &hashed_sel);
      double ci = l.card * r.card * pt * hashed_sel;
      double card = l.card * r.card * pt * sel;
      // Negation survival (Table 2, pushed-down row): when one side
      // carries a fused negated class whose enclosing classes join
      // here, apply (1 - Pt(A,C) * Pt(B,C)).
      for (int nc : p.NegatedClasses()) {
        const bool bound_right = Contains(rcov, nc) && Contains(lcov, nc - 1);
        const bool bound_left = Contains(lcov, nc) && Contains(rcov, nc + 1);
        if (bound_right || bound_left) {
          card *= 1.0 - stats_->TimeSel(nc - 1, nc + 1) *
                            stats_->TimeSel(nc, nc + 1);
        }
      }
      est.input_cost = ci;
      est.card = card;
      est.cost = l.cost + r.cost + ci + (n * params_.k) * ci +
                 params_.p * card;
      return est;
    }

    case PhysOp::kConj: {
      const Estimate l = EstimateNode(node->children[0].get());
      const Estimate r = EstimateNode(node->children[1].get());
      const auto lcov = node->children[0]->CoveredClasses();
      const auto rcov = node->children[1]->CoveredClasses();
      double sel, hashed_sel;
      int n;
      CrossSelectivity(lcov, rcov, &sel, &n, &hashed_sel);
      const double ci = l.card * r.card * hashed_sel;
      const double card = l.card * r.card * sel;
      est.input_cost = ci;
      est.card = card;
      est.cost = l.cost + r.cost + ci + (n * params_.k) * ci +
                 params_.p * card;
      return est;
    }

    case PhysOp::kDisj: {
      const Estimate l = EstimateNode(node->children[0].get());
      const Estimate r = EstimateNode(node->children[1].get());
      const double ci = l.card + r.card;
      est.input_cost = ci;
      est.card = ci;
      est.cost = l.cost + r.cost + ci + params_.p * ci;
      return est;
    }

    case PhysOp::kNSeq: {
      // Ci = CARD of the non-negated side; the negated buffer is probed
      // directly for the latest/first negator (Table 2: "not related to
      // CARD_B"). Output: one record per non-negated input.
      const PhysNode* neg =
          node->neg_left ? node->children[0].get() : node->children[1].get();
      const PhysNode* other =
          node->neg_left ? node->children[1].get() : node->children[0].get();
      const Estimate o = EstimateNode(other);
      double sel, hashed_sel;
      int n;
      CrossSelectivity(neg->CoveredClasses(), other->CoveredClasses(), &sel,
                       &n, &hashed_sel);
      const double ci = o.card;
      est.input_cost = ci;
      est.card = o.card;
      est.cost = o.cost + ci + (n * params_.k) * ci + params_.p * est.card;
      return est;
    }

    case PhysOp::kKSeq: {
      const PhysNode* start = node->children[0].get();
      const PhysNode* end = node->children[2].get();
      const int kc = node->children[1]->class_idx;
      const EventClass& kcl = p.classes[static_cast<size_t>(kc)];
      const Estimate s = EstimateNode(start);
      const Estimate e = EstimateNode(end);
      const double card_a = start != nullptr ? s.card : 1.0;
      const double card_c = end != nullptr ? e.card : 1.0;
      const int a_cls = start != nullptr
                            ? LastPositive(p, start->CoveredClasses())
                            : -1;
      const int c_cls =
          end != nullptr ? FirstPositive(p, end->CoveredClasses()) : -1;
      const double pt_ab =
          start != nullptr ? stats_->TimeSel(a_cls, kc) : 1.0;
      const double pt_bc = end != nullptr ? stats_->TimeSel(kc, c_cls) : 1.0;
      const double pt_ac = (start != nullptr && end != nullptr)
                               ? stats_->TimeSel(a_cls, c_cls)
                               : 1.0;
      double big_n = stats_->Card(kc) * pt_ab * pt_bc;
      if (kcl.kleene == KleeneKind::kCount) {
        big_n *= static_cast<double>(kcl.kleene_count);
      }
      const double ci = card_a * card_c * pt_ac * big_n;
      // P_{A,C} * P_{A,B} * P_{B,C}: all multi-predicate selectivity
      // across the three operands.
      double sel = 1.0;
      std::vector<int> covered = node->CoveredClasses();
      for (const ExprPtr& pred : p.multi_predicates) {
        const std::set<int> classes = ReferencedClasses(pred);
        bool all = true;
        for (int c : classes) {
          if (!Contains(covered, c)) all = false;
        }
        // Skip predicates fully inside the start or end subtree.
        const auto inside = [&](const PhysNode* sub) {
          if (sub == nullptr) return false;
          const auto cov = sub->CoveredClasses();
          for (int c : classes) {
            if (!Contains(cov, c)) return false;
          }
          return true;
        };
        if (all && !inside(start) && !inside(end)) {
          sel *= stats_->PairSel(*classes.begin(), *classes.rbegin());
        }
      }
      est.input_cost = ci;
      est.card = ci * sel;
      est.cost = s.cost + e.cost + ci + params_.p * est.card;
      return est;
    }

    case PhysOp::kNegFilter: {
      const Estimate in = EstimateNode(node->children[0].get());
      const int nc = node->class_idx;
      // Survival (Table 2, negation-on-top row, verbatim):
      // (1 - Pt(A,B) * Pt(B,C)) * Pt(A,C).
      const double survival =
          (1.0 -
           stats_->TimeSel(nc - 1, nc) * stats_->TimeSel(nc, nc + 1)) *
          stats_->TimeSel(nc - 1, nc + 1);
      const double ci = in.card;
      est.input_cost = ci;
      est.card = in.card * survival;
      est.cost = in.cost + ci + params_.p * est.card;
      return est;
    }
  }
  return est;
}

namespace {
void ExplainRec(const CostModel& model, const Pattern& p,
                const PhysNode* node, int depth, std::ostringstream* os) {
  if (node == nullptr) return;
  const CostModel::Estimate est = model.EstimateNode(node);
  for (int i = 0; i < depth; ++i) *os << "  ";
  if (node->is_leaf()) {
    *os << p.classes[static_cast<size_t>(node->class_idx)].alias
        << "  [card=" << est.card << "]\n";
    return;
  }
  *os << PhysOpName(node->op);
  if (node->op == PhysOp::kNegFilter) {
    *os << "(!" << p.classes[static_cast<size_t>(node->class_idx)].alias
        << ")";
  }
  *os << "  [Ci=" << est.input_cost << ", card=" << est.card
      << ", cost=" << est.cost << "]\n";
  for (const auto& c : node->children) {
    ExplainRec(model, p, c.get(), depth + 1, os);
  }
}
}  // namespace

std::string CostModel::ExplainWithCosts(const Pattern& pattern,
                                        const PhysicalPlan& plan) const {
  std::ostringstream os;
  os.precision(6);
  ExplainRec(*this, pattern, plan.root.get(), 0, &os);
  return os.str();
}

}  // namespace zstream
