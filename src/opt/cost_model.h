// The ZStream cost model (Section 5.1, Tables 1 and 2).
//
// Per-operator cost:  C = Ci + (n*k)*Ci + p*Co            (Formula 1)
// with k = 0.25, p = 1 by default; Ci and Co follow Table 2, and the
// formulas generalize to sub-plans by substituting operator output
// cardinalities for class cardinalities. A plan's cost is the sum of
// its operators' costs.
//
// Extension (documented in DESIGN.md): a hashed equality predicate
// scales the operator's input cost by its selectivity and is excluded
// from the predicate count n.
#ifndef ZSTREAM_OPT_COST_MODEL_H_
#define ZSTREAM_OPT_COST_MODEL_H_

#include <vector>

#include "opt/stats.h"
#include "plan/pattern.h"
#include "plan/physical_plan.h"

namespace zstream {

struct CostModelParams {
  double k = 0.25;  // predicate-evaluation weight
  double p = 1.0;   // output weight
  /// Mirror the engine's use of hash indexes for equality predicates.
  bool assume_hashing = true;
};

/// \brief Estimates plan costs from a statistics catalog.
class CostModel {
 public:
  CostModel(const Pattern* pattern, const StatsCatalog* stats,
            CostModelParams params = {});

  struct Estimate {
    double cost = 0.0;         // summed operator costs of the subtree
    double card = 0.0;         // output cardinality of the subtree
    double input_cost = 0.0;   // Ci of the subtree's root operator
  };

  /// Recursive estimate for a subtree.
  Estimate EstimateNode(const PhysNode* node) const;

  /// Total estimated cost of a plan (sum over operators).
  double PlanCost(const PhysicalPlan& plan) const {
    return EstimateNode(plan.root.get()).cost;
  }

  /// EXPLAIN with per-operator annotations: one line per node with its
  /// input cost Ci, output cardinality and cumulative cost.
  std::string ExplainWithCosts(const Pattern& pattern,
                               const PhysicalPlan& plan) const;

  const StatsCatalog& stats() const { return *stats_; }

 private:
  /// Product of multi-class predicate selectivities across the cut
  /// (pairs with one class on each side), and the count of predicates
  /// newly evaluable at this node.
  void CrossSelectivity(const std::vector<int>& left_cover,
                        const std::vector<int>& right_cover, double* sel,
                        int* num_preds, double* hashed_sel) const;

  const Pattern* pattern_;
  const StatsCatalog* stats_;
  CostModelParams params_;
};

}  // namespace zstream

#endif  // ZSTREAM_OPT_COST_MODEL_H_
