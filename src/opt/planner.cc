#include "opt/planner.h"

#include <chrono>
#include <limits>

#include "expr/analysis.h"
#include "verify/plan_verifier.h"

namespace zstream {

namespace {

// NSEQ is usable for class `nc` when its multi-class predicates touch at
// most the right neighbor (Section 4.4.2); otherwise NSEQ would need
// predicate information it does not have and ZStream applies a negation
// filter on top instead.
bool CanPushNegation(const Pattern& p, int nc) {
  for (const ExprPtr& pred : p.multi_predicates) {
    const std::set<int> classes = ReferencedClasses(pred);
    if (classes.count(nc) == 0) continue;
    for (int c : classes) {
      if (c != nc && c != nc + 1) return false;
    }
  }
  return true;
}

bool IsSequenceShaped(const Pattern& p) {
  return p.IsSequence();
}

}  // namespace

Planner::Planner(PatternPtr pattern, const StatsCatalog* stats,
                 PlannerOptions options)
    : pattern_(std::move(pattern)), stats_(stats), options_(options) {}

Result<std::vector<Planner::Unit>> Planner::BuildUnits(
    const std::vector<bool>& push_neg) {
  const Pattern& p = *pattern_;
  std::vector<Unit> units;
  int i = 0;
  const int n = p.num_classes();
  while (i < n) {
    const EventClass& ec = p.classes[static_cast<size_t>(i)];
    if (ec.negated) {
      if (push_neg[static_cast<size_t>(i)]) {
        // Fuse with the right neighbor.
        if (i + 1 >= n) {
          return Status::SemanticError("negation cannot end a pattern");
        }
        const EventClass& next = p.classes[static_cast<size_t>(i + 1)];
        if (next.negated || next.is_kleene()) {
          return Status::NotSupported(
              "negation must be followed by a plain class to push down");
        }
        units.push_back(Unit{PhysNode::NSeq(PhysNode::Leaf(i),
                                            PhysNode::Leaf(i + 1),
                                            /*neg_left=*/true)});
        i += 2;
      } else {
        ++i;  // handled by a NEG filter on top
      }
      continue;
    }
    if (ec.is_kleene()) {
      PhysNodePtr start;
      if (!units.empty()) {
        start = units.back().plan;
        units.pop_back();
      }
      PhysNodePtr end;
      if (i + 1 < n) {
        const EventClass& next = p.classes[static_cast<size_t>(i + 1)];
        if (next.negated) {
          return Status::NotSupported(
              "negation directly after a Kleene closure is not supported");
        }
        if (next.is_kleene()) {
          return Status::NotSupported("adjacent Kleene closures");
        }
        end = PhysNode::Leaf(i + 1);
      }
      units.push_back(
          Unit{PhysNode::KSeq(std::move(start), PhysNode::Leaf(i), end)});
      i += 2;
      continue;
    }
    units.push_back(Unit{PhysNode::Leaf(i)});
    ++i;
  }
  if (units.empty()) {
    return Status::SemanticError("pattern has no positive classes");
  }
  return units;
}

PhysNodePtr Planner::RunDp(const std::vector<Unit>& units,
                           const CostModel& model) {
  const int m = static_cast<int>(units.size());
  // best[i][j]: cheapest subtree covering units i..j (inclusive).
  std::vector<std::vector<PhysNodePtr>> best(
      static_cast<size_t>(m), std::vector<PhysNodePtr>(static_cast<size_t>(m)));
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(m),
      std::vector<double>(static_cast<size_t>(m),
                          std::numeric_limits<double>::infinity()));

  for (int i = 0; i < m; ++i) {
    best[static_cast<size_t>(i)][static_cast<size_t>(i)] = units
        [static_cast<size_t>(i)].plan;
    cost[static_cast<size_t>(i)][static_cast<size_t>(i)] =
        model.EstimateNode(units[static_cast<size_t>(i)].plan.get()).cost;
  }

  for (int s = 2; s <= m; ++s) {          // interval size (Algorithm 5)
    for (int i = 0; i + s - 1 < m; ++i) { // interval start
      const int j = i + s - 1;
      for (int r = i; r < j; ++r) {       // root split position
        PhysNodePtr candidate = PhysNode::Seq(
            best[static_cast<size_t>(i)][static_cast<size_t>(r)],
            best[static_cast<size_t>(r + 1)][static_cast<size_t>(j)]);
        const double c = model.EstimateNode(candidate.get()).cost;
        if (c < cost[static_cast<size_t>(i)][static_cast<size_t>(j)]) {
          cost[static_cast<size_t>(i)][static_cast<size_t>(j)] = c;
          best[static_cast<size_t>(i)][static_cast<size_t>(j)] =
              std::move(candidate);
        }
      }
    }
  }
  return best[0][static_cast<size_t>(m - 1)];
}

Result<PhysicalPlan> Planner::PlanWithNegationChoice(
    const std::vector<bool>& push_neg) {
  ZS_ASSIGN_OR_RETURN(std::vector<Unit> units, BuildUnits(push_neg));
  const CostModel model(pattern_.get(), stats_, options_.cost_params);
  PhysNodePtr root =
      units.size() == 1 ? units[0].plan : RunDp(units, model);
  for (int nc : pattern_->NegatedClasses()) {
    if (!push_neg[static_cast<size_t>(nc)]) {
      root = PhysNode::NegFilter(std::move(root), nc);
    }
  }
  PhysicalPlan plan{std::move(root), 0.0};
  plan.estimated_cost = model.PlanCost(plan);
  return plan;
}

Result<PhysicalPlan> Planner::OptimalPlan() {
  const auto t0 = std::chrono::steady_clock::now();
  if (!IsSequenceShaped(*pattern_)) {
    // CONJ/DISJ-structured patterns: structural plan (see header),
    // pushing each negated class down only when its predicates stay
    // inside the NSEQ's coverage (otherwise a NEG filter on top).
    std::vector<bool> push_neg(
        static_cast<size_t>(pattern_->num_classes()), true);
    for (int nc : pattern_->NegatedClasses()) {
      push_neg[static_cast<size_t>(nc)] = CanPushNegation(*pattern_, nc);
    }
    PhysicalPlan plan = StructuralPlan(*pattern_, push_neg);
    ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern_, plan));
    const CostModel model(pattern_.get(), stats_, options_.cost_params);
    plan.estimated_cost = model.PlanCost(plan);
    return plan;
  }

  const std::vector<int> negs = pattern_->NegatedClasses();
  // Enumerate push-down vs filter-on-top per negated class (few).
  std::vector<std::vector<bool>> combos;
  std::vector<bool> base(static_cast<size_t>(pattern_->num_classes()), false);
  combos.push_back(base);
  for (int nc : negs) {
    const bool can_push = CanPushNegation(*pattern_, nc);
    std::vector<std::vector<bool>> next;
    for (const auto& combo : combos) {
      if (can_push) {
        auto pushed = combo;
        pushed[static_cast<size_t>(nc)] = true;
        next.push_back(std::move(pushed));
      }
      if (!can_push || options_.consider_negation_top) {
        next.push_back(combo);  // filter on top
      }
    }
    combos = std::move(next);
  }

  Result<PhysicalPlan> best = Status::Internal("no plan found");
  for (const auto& combo : combos) {
    Result<PhysicalPlan> plan = PlanWithNegationChoice(combo);
    if (!plan.ok()) continue;
    if (!best.ok() || plan->estimated_cost < best->estimated_cost) {
      best = std::move(plan);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  last_plan_micros_ =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  if (best.ok()) {
    ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern_, *best));
  }
  return best;
}

namespace {
// All binary trees over units[i..j], memoized per interval.
void EnumerateInterval(
    const std::vector<PhysNodePtr>& unit_plans, int i, int j,
    std::vector<std::vector<std::vector<PhysNodePtr>>>* memo) {
  auto& cell = (*memo)[static_cast<size_t>(i)][static_cast<size_t>(j)];
  if (!cell.empty()) return;
  if (i == j) {
    cell.push_back(unit_plans[static_cast<size_t>(i)]);
    return;
  }
  for (int r = i; r < j; ++r) {
    EnumerateInterval(unit_plans, i, r, memo);
    EnumerateInterval(unit_plans, r + 1, j, memo);
    for (const auto& l : (*memo)[static_cast<size_t>(i)][static_cast<size_t>(r)]) {
      for (const auto& rp :
           (*memo)[static_cast<size_t>(r + 1)][static_cast<size_t>(j)]) {
        cell.push_back(PhysNode::Seq(l, rp));
      }
    }
  }
}
}  // namespace

Result<std::vector<PhysicalPlan>> Planner::EnumerateShapes() {
  if (!IsSequenceShaped(*pattern_)) {
    return Status::NotSupported("shape enumeration requires a sequence");
  }
  std::vector<bool> push_neg(static_cast<size_t>(pattern_->num_classes()),
                             false);
  for (int nc : pattern_->NegatedClasses()) {
    if (!CanPushNegation(*pattern_, nc)) {
      return Status::NotSupported(
          "shape enumeration requires pushable negation");
    }
    push_neg[static_cast<size_t>(nc)] = true;
  }
  ZS_ASSIGN_OR_RETURN(std::vector<Unit> units, BuildUnits(push_neg));
  std::vector<PhysNodePtr> unit_plans;
  for (const Unit& u : units) unit_plans.push_back(u.plan);
  const int m = static_cast<int>(unit_plans.size());
  std::vector<std::vector<std::vector<PhysNodePtr>>> memo(
      static_cast<size_t>(m),
      std::vector<std::vector<PhysNodePtr>>(static_cast<size_t>(m)));
  EnumerateInterval(unit_plans, 0, m - 1, &memo);

  const CostModel model(pattern_.get(), stats_, options_.cost_params);
  std::vector<PhysicalPlan> out;
  for (const auto& root : memo[0][static_cast<size_t>(m - 1)]) {
    PhysicalPlan plan{root, 0.0};
    ZS_RETURN_IF_ERROR(verify::VerifyPlan(*pattern_, plan));
    plan.estimated_cost = model.PlanCost(plan);
    out.push_back(std::move(plan));
  }
  return out;
}

Result<PhysicalPlan> Planner::ExhaustiveOptimal() {
  ZS_ASSIGN_OR_RETURN(std::vector<PhysicalPlan> shapes, EnumerateShapes());
  Result<PhysicalPlan> best = Status::Internal("no plan found");
  for (PhysicalPlan& plan : shapes) {
    if (!best.ok() || plan.estimated_cost < best->estimated_cost) {
      best = std::move(plan);
    }
  }
  // Also consider negation-on-top alternatives via the DP path (they are
  // not tree reshapes of the same units).
  if (options_.consider_negation_top && !pattern_->NegatedClasses().empty()) {
    Result<PhysicalPlan> dp = OptimalPlan();
    if (dp.ok() && (!best.ok() || dp->estimated_cost < best->estimated_cost)) {
      best = std::move(dp);
    }
  }
  return best;
}

}  // namespace zstream
