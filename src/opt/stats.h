// Statistics for cost estimation (Table 1) and runtime monitoring
// (Section 5.3).
//
// A StatsCatalog is the cost model's input: per-class arrival rates
// (already folded with single-class selectivities, so CARD_E =
// rate_E * TW), pairwise multi-class predicate selectivities P_{E1,E2},
// and pairwise time selectivities Pt_{E1,E2} (default 1/2).
//
// A WindowedClassStats collector maintains windowed estimates of the same
// quantities from live execution, using simple windowed averages over
// event-time buckets, as the paper describes.
#ifndef ZSTREAM_OPT_STATS_H_
#define ZSTREAM_OPT_STATS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/timestamp.h"
#include "plan/pattern.h"

namespace zstream {

/// Default implicit time-predicate selectivity (Table 1).
inline constexpr double kDefaultTimeSelectivity = 0.5;

/// \brief Input statistics for the cost model.
class StatsCatalog {
 public:
  StatsCatalog() = default;
  StatsCatalog(int num_classes, double window)
      : window_(window),
        rate_(static_cast<size_t>(num_classes), 1.0) {}

  double window() const { return window_; }
  void set_window(double w) { window_ = w; }
  int num_classes() const { return static_cast<int>(rate_.size()); }

  /// Effective class rate: R_E * P_E (events admitted to E's leaf buffer
  /// per unit time).
  double rate(int cls) const { return rate_[static_cast<size_t>(cls)]; }
  void set_rate(int cls, double r) { rate_[static_cast<size_t>(cls)] = r; }

  /// CARD_E = R_E * TW_p * P_E (Table 1).
  double Card(int cls) const { return rate(cls) * window_; }

  /// Product of multi-class predicate selectivities between classes i
  /// and j (1.0 when no predicate relates them).
  double PairSel(int i, int j) const;
  void SetPairSel(int i, int j, double sel);

  /// Implicit time-predicate selectivity Pt_{i,j} (defaults to 1/2).
  double TimeSel(int i, int j) const;
  void SetTimeSel(int i, int j, double sel);

  /// Largest relative change of any component vs `other` — the drift
  /// measure the plan adapter thresholds on.
  double MaxRelativeChange(const StatsCatalog& other) const;

 private:
  static std::pair<int, int> Key(int i, int j) {
    return i < j ? std::make_pair(i, j) : std::make_pair(j, i);
  }

  double window_ = 1.0;
  std::vector<double> rate_;
  std::map<std::pair<int, int>, double> pair_sel_;
  std::map<std::pair<int, int>, double> time_sel_;
};

/// Merges per-shard (or per-partition) catalogs observed over disjoint
/// slices of one stream: class rates sum (each slice saw a fraction of
/// the traffic over the same event-time span); pair/time selectivities
/// are averaged weighted by `weights` (typically events observed per
/// slice). Used by PartitionedEngine::StatsSnapshot and the runtime's
/// merged re-planning. `parts` must be non-empty and share num_classes.
StatsCatalog MergeStatsCatalogs(const std::vector<StatsCatalog>& parts,
                                const std::vector<double>& weights);

/// \brief Windowed runtime estimator feeding plan adaptation.
///
/// Counts are kept in fixed-width event-time buckets; estimates average
/// over the most recent `num_buckets` full buckets, so the estimator
/// tracks rate and selectivity changes with bounded lag.
class WindowedClassStats {
 public:
  /// `bucket_width` is in event-time units; `num_predicates` is the size
  /// of the pattern's multi-predicate list.
  WindowedClassStats(int num_classes, int num_predicates, Duration bucket_width,
               int num_buckets = 8);

  void OnEvent(Timestamp ts);
  void OnClassAdmit(int cls);
  void OnPredicateEval(int pred_idx, bool passed);

  /// Builds a catalog for `pattern` from the windowed averages.
  /// Pair selectivities come from per-predicate pass ratios; classes or
  /// predicates with too few observations keep the given defaults.
  StatsCatalog Snapshot(const Pattern& pattern,
                        const StatsCatalog& defaults) const;

  int64_t total_events() const { return total_events_; }

 private:
  struct Bucket {
    Timestamp start = 0;
    int64_t events = 0;
    std::vector<int64_t> admits;
    std::vector<int64_t> pred_evals;
    std::vector<int64_t> pred_passes;
  };

  void Roll(Timestamp ts);

  int num_classes_;
  int num_predicates_;
  Duration bucket_width_;
  size_t num_buckets_;
  std::deque<Bucket> buckets_;
  int64_t total_events_ = 0;
};

}  // namespace zstream

#endif  // ZSTREAM_OPT_STATS_H_
