#include "opt/adaptive.h"

#include "verify/plan_verifier.h"

namespace zstream {

AdaptiveController::AdaptiveController(PatternPtr pattern,
                                       AdaptiveOptions options)
    : pattern_(std::move(pattern)), options_(options) {}

void AdaptiveController::OnPlanInstalled(const PhysicalPlan& plan,
                                         const StatsCatalog& stats) {
  installed_ = plan;
  installed_stats_ = stats;
  has_plan_ = true;
}

std::optional<PhysicalPlan> AdaptiveController::MaybeReplan(
    const StatsCatalog& current) {
  if (!has_plan_) return std::nullopt;
  const double drift = current.MaxRelativeChange(installed_stats_);
  if (drift <= options_.drift_threshold) return std::nullopt;

  ++replan_evaluations_;
  PlannerOptions popts;
  popts.cost_params = options_.cost_params;
  Planner planner(pattern_, &current, popts);
  Result<PhysicalPlan> candidate = planner.OptimalPlan();
  // Reset the baseline either way so we don't re-plan every round while
  // statistics sit just past the threshold.
  installed_stats_ = current;
  // A candidate the verifier rejects must never reach SwitchPlan: the
  // running engine would tear down state for a plan it then refuses.
  if (!candidate.ok() ||
      !verify::VerifyPlan(*pattern_, *candidate).ok()) {
    return std::nullopt;
  }

  const CostModel model(pattern_.get(), &current, options_.cost_params);
  const double current_cost = model.PlanCost(installed_);
  if (candidate->estimated_cost <
      current_cost * (1.0 - options_.improvement_threshold)) {
    installed_ = *candidate;
    return *candidate;
  }
  return std::nullopt;
}

}  // namespace zstream
