#include "opt/adaptive.h"

#include "obs/metrics.h"
#include "verify/plan_verifier.h"

namespace zstream {

namespace {

// Process-wide adaptation tallies (the per-query engine counters track
// switches; these see every controller in the process, including ones
// whose candidate never reached SwitchPlan).
obs::Counter* ReplanEvalCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "zstream_replan_evaluations_total", {},
      "Re-plans evaluated after statistics drifted past threshold");
  return c;
}

obs::Counter* ReplanRejectedCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "zstream_replan_candidates_rejected_total", {},
      "Replan candidates refused by the plan verifier (or planner error)");
  return c;
}

obs::Counter* ReplanSwitchCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "zstream_replan_switches_total", {},
      "Replan candidates that beat the improvement threshold and were "
      "handed to SwitchPlan");
  return c;
}

}  // namespace

AdaptiveController::AdaptiveController(PatternPtr pattern,
                                       AdaptiveOptions options)
    : pattern_(std::move(pattern)), options_(options) {}

void AdaptiveController::OnPlanInstalled(const PhysicalPlan& plan,
                                         const StatsCatalog& stats) {
  installed_ = plan;
  installed_stats_ = stats;
  has_plan_ = true;
}

std::optional<PhysicalPlan> AdaptiveController::MaybeReplan(
    const StatsCatalog& current) {
  if (!has_plan_) return std::nullopt;
  const double drift = current.MaxRelativeChange(installed_stats_);
  if (drift <= options_.drift_threshold) return std::nullopt;

  ++replan_evaluations_;
  ReplanEvalCounter()->Inc();
  PlannerOptions popts;
  popts.cost_params = options_.cost_params;
  Planner planner(pattern_, &current, popts);
  Result<PhysicalPlan> candidate = planner.OptimalPlan();
  // Reset the baseline either way so we don't re-plan every round while
  // statistics sit just past the threshold.
  installed_stats_ = current;
  // A candidate the verifier rejects must never reach SwitchPlan: the
  // running engine would tear down state for a plan it then refuses.
  if (!candidate.ok() ||
      !verify::VerifyPlan(*pattern_, *candidate).ok()) {
    ReplanRejectedCounter()->Inc();
    return std::nullopt;
  }

  const CostModel model(pattern_.get(), &current, options_.cost_params);
  const double current_cost = model.PlanCost(installed_);
  if (candidate->estimated_cost <
      current_cost * (1.0 - options_.improvement_threshold)) {
    installed_ = *candidate;
    ReplanSwitchCounter()->Inc();
    return *candidate;
  }
  return std::nullopt;
}

}  // namespace zstream
