// zstream_cli: command-line client for a running zstream_server.
//
//   zstream_cli [--host H] [--port N] exec "STATEMENT"...
//   zstream_cli [--host H] [--port N] replay stock|weblog
//               [--stream S] [--events N] [--symbols N] [--batch N]
//               [--connections N] [--partition-field I] [--flush]
//               [--expect QUERY=COUNT]
//   zstream_cli [--host H] [--port N] tail QUERY [--count N]
//               [--timeout-ms N]
//   zstream_cli [--host H] [--port N] stats
//               [--watch [--interval-ms N] [--ticks N]]
//   zstream_cli [--host H] [--port N] metrics [--json]
//   zstream_cli [--host H] [--port N] trace [--out FILE]
//   zstream_cli [--host H] [--port N] flush
//
// `replay` regenerates the deterministic stock/weblog workload (same
// seeds as the benchmarks) and streams it over the wire; with --flush
// it then prints `query NAME matches=N` for every served query, and
// --expect QUERY=COUNT turns the run into an assertion (exit 1 on
// mismatch) — the CI smoke test's hook.
//
// `stats --watch` polls the server's stats document on an interval and
// prints one delta line per tick (ingest rate, match rate, aggregate
// shard queue depth) — a poor man's `top` for a running server.
// `metrics` fetches the observability registry snapshot over the wire
// (the same document the HTTP /metrics side port serves).
// `trace` fetches the server's span window as chrome://tracing /
// Perfetto JSON (the /trace side-port document); --out writes it to a
// file ready to load into a trace viewer.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"

#include "net/client.h"
#include "workload/net_replay.h"
#include "workload/stock_gen.h"
#include "workload/weblog_gen.h"

namespace {

using namespace zstream;

int Usage() {
  std::fprintf(stderr,
               "usage: zstream_cli [--host H] [--port N] "
               "exec|replay|tail|stats|metrics|trace|flush ...\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunExec(net::Client& client, const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "exec needs at least one statement\n");
    return 2;
  }
  for (const std::string& stmt : args) {
    auto reply = client.Execute(stmt);
    if (!reply.ok()) return Fail(reply.status());
    if (!reply->message.empty()) std::printf("%s\n", reply->message.c_str());
    for (const QueryInfo& row : reply->rows) {
      std::printf("%s ON %s: %s\n", row.name.c_str(), row.stream.c_str(),
                  row.text.c_str());
    }
  }
  return 0;
}

int RunReplay(net::Client& client, const std::string& host, uint16_t port,
              std::vector<std::string> args) {
  if (args.empty()) {
    std::fprintf(stderr, "replay needs a workload (stock|weblog)\n");
    return 2;
  }
  const std::string workload = args[0];
  std::string stream = workload;
  int64_t num_events = 100000;
  int symbols = 0;
  NetReplayOptions options;
  bool flush = false;
  std::string expect_query;
  uint64_t expect_count = 0;
  bool has_expect = false;

  for (size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    if (args[i] == "--stream") {
      const char* v = next();
      if (v == nullptr) return Usage();
      stream = v;
    } else if (args[i] == "--events") {
      const char* v = next();
      if (v == nullptr) return Usage();
      num_events = std::atoll(v);
    } else if (args[i] == "--symbols") {
      const char* v = next();
      if (v == nullptr) return Usage();
      symbols = std::atoi(v);
    } else if (args[i] == "--batch") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.batch_size = static_cast<size_t>(std::atoll(v));
    } else if (args[i] == "--connections") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.num_connections = std::atoi(v);
    } else if (args[i] == "--partition-field") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.partition_field = std::atoi(v);
    } else if (args[i] == "--flush") {
      flush = true;
    } else if (args[i] == "--expect") {
      const char* v = next();
      if (v == nullptr) return Usage();
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) return Usage();
      expect_query.assign(v, eq);
      expect_count = std::strtoull(eq + 1, nullptr, 10);
      has_expect = true;
      flush = true;
    } else {
      return Usage();
    }
  }

  std::vector<EventPtr> events;
  if (workload == "stock") {
    StockGenOptions gen;
    gen.num_events = num_events;
    if (symbols > 0) {
      gen.names.clear();
      gen.weights.clear();
      for (int s = 0; s < symbols; ++s) {
        gen.names.push_back("SYM" + std::to_string(s));
        gen.weights.push_back(1.0);
      }
    }
    events = GenerateStockTrades(gen);
  } else if (workload == "weblog") {
    WebLogGenOptions gen;
    gen.total_records = num_events;
    events = GenerateWebLog(gen);
  } else {
    std::fprintf(stderr, "unknown workload '%s' (stock|weblog)\n",
                 workload.c_str());
    return 2;
  }

  auto result = ReplayOverWire(host, port, stream, events, options);
  if (!result.ok()) return Fail(result.status());
  std::printf(
      "replayed %zu events in %.3f s (%.0f ev/s, accepted=%llu, "
      "dropped=%llu%s)\n",
      events.size(), result->elapsed_s, result->events_per_sec,
      static_cast<unsigned long long>(result->accepted),
      static_cast<unsigned long long>(result->dropped),
      result->throttled ? ", throttled" : "");

  if (!flush) return 0;
  auto ack = client.Flush();
  if (!ack.ok()) return Fail(ack.status());
  bool expect_seen = false;
  bool expect_ok = true;
  for (const auto& [name, matches] : ack->queries) {
    std::printf("query %s matches=%llu\n", name.c_str(),
                static_cast<unsigned long long>(matches));
    if (has_expect && name == expect_query) {
      expect_seen = true;
      expect_ok = matches == expect_count;
    }
  }
  if (has_expect && (!expect_seen || !expect_ok)) {
    std::fprintf(stderr,
                 "expectation failed: wanted %s=%llu, %s\n",
                 expect_query.c_str(),
                 static_cast<unsigned long long>(expect_count),
                 expect_seen ? "count differs" : "query not found");
    return 1;
  }
  return 0;
}

int RunTail(net::Client& client, std::vector<std::string> args) {
  if (args.empty()) {
    std::fprintf(stderr, "tail needs a query name\n");
    return 2;
  }
  const std::string query = args[0];
  size_t count = 10;
  int timeout_ms = 10000;
  for (size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    if (args[i] == "--count") {
      const char* v = next();
      if (v == nullptr) return Usage();
      count = static_cast<size_t>(std::atoll(v));
    } else if (args[i] == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      timeout_ms = std::atoi(v);
    } else {
      return Usage();
    }
  }
  auto sub = client.Subscribe(query);
  if (!sub.ok()) return Fail(sub.status());
  std::printf("subscribed to %s on stream %s\n", sub->query.c_str(),
              sub->stream.c_str());
  std::fflush(stdout);
  auto got = client.WaitForMatches(count, timeout_ms);
  if (!got.ok()) return Fail(got.status());
  for (const net::NetMatch& m : client.TakeMatches()) {
    std::printf("match query=%s %s\n", m.query.c_str(),
                m.match.ToString().c_str());
  }
  return 0;
}

// Pulls the first `"key": <integer>` value out of a stats JSON
// document at or after `from`. The server renders stats itself with a
// stable field order (runtime_stats.cc / BuildStatsJson), so a real
// JSON parser would be overkill here. Returns false when absent.
bool FindJsonU64(const std::string& json, const char* key, size_t from,
                 uint64_t* out, size_t* next) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos) return false;
  size_t pos = at + needle.size();
  while (pos < json.size() && json[pos] == ' ') ++pos;
  if (pos >= json.size() || std::isdigit(json[pos]) == 0) return false;
  *out = std::strtoull(json.c_str() + pos, nullptr, 10);
  if (next != nullptr) *next = pos;
  return true;
}

// One sampled reading of the counters the watch ticker reports.
struct WatchSample {
  uint64_t ingested = 0;
  uint64_t traced = 0;
  uint64_t matches = 0;
  uint64_t dropped = 0;
  uint64_t queue_depth = 0;  // summed over shards
};

bool ParseWatchSample(const std::string& json, WatchSample* s) {
  // The stats document nests the runtime object last, so scan for its
  // fields from the start; the "runtime" totals appear before the
  // per-shard array, whose queue_depth entries we sum.
  const size_t rt = json.find("\"runtime\":");
  const size_t base = rt == std::string::npos ? 0 : rt;
  if (!FindJsonU64(json, "events_ingested", base, &s->ingested, nullptr)) {
    return false;
  }
  FindJsonU64(json, "events_traced", base, &s->traced, nullptr);
  if (!FindJsonU64(json, "matches", base, &s->matches, nullptr)) {
    return false;
  }
  FindJsonU64(json, "events_dropped", base, &s->dropped, nullptr);
  size_t pos = base;
  uint64_t depth = 0;
  s->queue_depth = 0;
  while (FindJsonU64(json, "queue_depth", pos, &depth, &pos)) {
    s->queue_depth += depth;
    ++pos;
  }
  return true;
}

int RunStatsWatch(net::Client& client, int interval_ms, int64_t ticks) {
  WatchSample prev;
  {
    auto json = client.StatsJson();
    if (!json.ok()) return Fail(json.status());
    if (!ParseWatchSample(*json, &prev)) {
      std::fprintf(stderr, "cannot parse stats document\n");
      return 1;
    }
  }
  std::printf("%10s %12s %10s %12s %10s %10s\n", "t", "ev/s", "traced/s",
              "matches/s", "dropped", "queue");
  std::fflush(stdout);
  const auto start = std::chrono::steady_clock::now();
  auto last = start;
  for (int64_t tick = 0; ticks < 0 || tick < ticks; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    auto json = client.StatsJson();
    if (!json.ok()) return Fail(json.status());
    WatchSample cur;
    if (!ParseWatchSample(*json, &cur)) {
      std::fprintf(stderr, "cannot parse stats document\n");
      return 1;
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - last).count();
    const double t =
        std::chrono::duration<double>(now - start).count();
    last = now;
    const double ev_s =
        dt > 0 ? (cur.ingested - prev.ingested) / dt : 0.0;
    const double traced_s =
        dt > 0 ? (cur.traced - prev.traced) / dt : 0.0;
    const double match_s =
        dt > 0 ? (cur.matches - prev.matches) / dt : 0.0;
    std::printf("%9.1fs %12.0f %10.0f %12.1f %10llu %10llu\n", t, ev_s,
                traced_s, match_s,
                static_cast<unsigned long long>(cur.dropped),
                static_cast<unsigned long long>(cur.queue_depth));
    std::fflush(stdout);
    prev = cur;
  }
  return 0;
}

int RunStats(net::Client& client, const std::vector<std::string>& args) {
  bool watch = false;
  int interval_ms = 1000;
  int64_t ticks = -1;  // watch forever by default
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    if (args[i] == "--watch") {
      watch = true;
    } else if (args[i] == "--interval-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      interval_ms = std::atoi(v);
      if (interval_ms <= 0) interval_ms = 1000;
    } else if (args[i] == "--ticks") {
      const char* v = next();
      if (v == nullptr) return Usage();
      ticks = std::atoll(v);
    } else {
      return Usage();
    }
  }
  if (watch) return RunStatsWatch(client, interval_ms, ticks);
  auto json = client.StatsJson();
  if (!json.ok()) return Fail(json.status());
  std::printf("%s\n", json->c_str());
  return 0;
}

int RunMetrics(net::Client& client, const std::vector<std::string>& args) {
  uint8_t format = net::kMetricsFormatPrometheus;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      format = net::kMetricsFormatJson;
    } else {
      return Usage();
    }
  }
  auto doc = client.Metrics(format);
  if (!doc.ok()) return Fail(doc.status());
  std::printf("%s", doc->c_str());
  if (!doc->empty() && doc->back() != '\n') std::printf("\n");
  return 0;
}

int RunTrace(net::Client& client, const std::vector<std::string>& args) {
  std::string out_path;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      return Usage();
    }
  }
  auto doc = client.Trace();
  if (!doc.ok()) return Fail(doc.status());
  if (out_path.empty()) {
    std::printf("%s\n", doc->c_str());
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(doc->data(), 1, doc->size(), f);
  std::fclose(f);
  if (written != doc->size()) {
    std::fprintf(stderr, "short write to %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu bytes to %s (load in chrome://tracing or "
              "https://ui.perfetto.dev)\n",
              doc->size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7979;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      break;
    }
  }
  if (i >= argc) return Usage();
  const std::string command = argv[i++];
  std::vector<std::string> args(argv + i, argv + argc);

  auto client = net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  if (command == "exec") return RunExec(**client, args);
  if (command == "replay") return RunReplay(**client, host, port, args);
  if (command == "tail") return RunTail(**client, args);
  if (command == "stats") return RunStats(**client, args);
  if (command == "metrics") return RunMetrics(**client, args);
  if (command == "trace") return RunTrace(**client, args);
  if (command == "flush") {
    auto ack = (*client)->Flush();
    if (!ack.ok()) return Fail(ack.status());
    for (const auto& [name, matches] : ack->queries) {
      std::printf("query %s matches=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(matches));
    }
    return 0;
  }
  return Usage();
}
