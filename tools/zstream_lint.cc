// zstream_lint: static checker for .zsql query scripts.
//
//   zstream_lint [--strict] [--quiet] FILE...
//   zstream_lint --query "PATTERN ..." --stream "sym STRING, price INT"
//
// A script is a sequence of statements (CREATE STREAM / CREATE QUERY /
// bare PATTERN queries), one per paragraph: statements are separated by
// blank lines, and lines starting with `--` are comments. Every
// statement is parsed and analyzed exactly like the server would;
// parse/analyze/typecheck failures print as errors (ZS-P/L/S/T codes
// with file:line:column), and clean queries run the ZS-W lint rules
// (verify/lint.h).
//
// Exit status: 0 clean, 1 any error (or any warning with --strict),
// 2 usage/IO problems.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "query/analyzer.h"
#include "query/ddl.h"
#include "verify/lint.h"

namespace {

using zstream::DdlKind;
using zstream::DdlStatement;
using zstream::Field;
using zstream::ParseDdl;
using zstream::PatternPtr;
using zstream::Schema;
using zstream::SchemaPtr;
using zstream::Status;
using zstream::verify::LintPattern;
using zstream::verify::LintWarning;

struct Block {
  std::string text;
  int start_line = 1;  // 1-based line of the block's first line
};

// Splits a script into paragraph statements, dropping `--` comments but
// preserving line numbers for diagnostics.
std::vector<Block> SplitBlocks(const std::string& content) {
  std::vector<Block> blocks;
  std::istringstream in(content);
  std::string line;
  Block current;
  int lineno = 0;
  bool in_block = false;
  while (std::getline(in, line)) {
    ++lineno;
    std::string stripped = line;
    const size_t comment = stripped.find("--");
    if (comment != std::string::npos) stripped.resize(comment);
    const bool blank =
        stripped.find_first_not_of(" \t\r") == std::string::npos;
    if (blank && !in_block) continue;
    if (blank) {
      blocks.push_back(current);
      current = Block{};
      in_block = false;
      continue;
    }
    if (!in_block) {
      current.start_line = lineno;
      in_block = true;
    } else {
      current.text += "\n";
    }
    current.text += stripped;
  }
  if (in_block) blocks.push_back(current);
  return blocks;
}

struct Counters {
  int errors = 0;
  int warnings = 0;
  int queries = 0;
};

void PrintDiag(const std::string& file, int block_start, const char* severity,
               const std::string& code, int line, int column,
               const std::string& message) {
  // Block-relative line -> file line (column is already file-accurate
  // since comments are stripped, not reflowed).
  const int file_line = line > 0 ? block_start + line - 1 : block_start;
  if (line > 0) {
    std::printf("%s:%d:%d: %s: %s %s\n", file.c_str(), file_line, column,
                severity, code.empty() ? "ZS-????" : code.c_str(),
                message.c_str());
  } else {
    std::printf("%s:%d: %s: %s %s\n", file.c_str(), file_line, severity,
                code.empty() ? "ZS-????" : code.c_str(), message.c_str());
  }
}

void LintQueryPattern(const std::string& file, const Block& block,
                      const PatternPtr& pattern, Counters* counters) {
  ++counters->queries;
  for (const LintWarning& w : LintPattern(*pattern)) {
    ++counters->warnings;
    PrintDiag(file, block.start_line, "warning", w.code, w.line, w.column,
              w.message);
  }
}

// Lints one script against `streams` (shared across files, so a schema
// file can precede query files on the command line).
void LintFile(const std::string& file, const std::string& content,
              std::map<std::string, SchemaPtr>* streams,
              Counters* counters) {
  for (const Block& block : SplitBlocks(content)) {
    auto stmt = ParseDdl(block.text);
    if (!stmt.ok()) {
      ++counters->errors;
      const Status& st = stmt.status();
      PrintDiag(file, block.start_line, "error", st.error_code(), st.line(),
                st.column(), st.message());
      continue;
    }
    switch (stmt->kind) {
      case DdlKind::kCreateStream:
        (*streams)[stmt->name] = Schema::Make(stmt->fields);
        continue;
      case DdlKind::kCreateQuery:
      case DdlKind::kSelect: {
        const std::string stream =
            stmt->kind == DdlKind::kSelect ? "default" : stmt->stream;
        auto found = streams->find(stream);
        if (found == streams->end()) {
          ++counters->errors;
          PrintDiag(file, block.start_line, "error", "ZS-D0001",
                    stmt->name_line, stmt->name_column,
                    "unknown stream '" + stream +
                        "' (declare it with CREATE STREAM first)");
          continue;
        }
        auto pattern = zstream::Analyze(*stmt->query, found->second);
        if (!pattern.ok()) {
          ++counters->errors;
          const Status& st = pattern.status();
          PrintDiag(file, block.start_line, "error", st.error_code(),
                    st.line(), st.column(), st.message());
          continue;
        }
        LintQueryPattern(file, block, *pattern, counters);
        continue;
      }
      default:
        // DROP/SHOW have no static content to lint.
        continue;
    }
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: zstream_lint [--strict] [--quiet] FILE...\n"
               "       zstream_lint [--strict] --query TEXT "
               "--stream \"name TYPE, ...\"\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool quiet = false;
  std::string inline_query;
  std::string inline_stream;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--query" && i + 1 < argc) {
      inline_query = argv[++i];
    } else if (arg == "--stream" && i + 1 < argc) {
      inline_stream = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && inline_query.empty()) return Usage();

  std::map<std::string, SchemaPtr> streams;
  Counters counters;

  if (!inline_query.empty()) {
    // --stream "sym STRING, price INT" declares the default stream.
    std::string ddl = "CREATE STREAM default (" +
                      (inline_stream.empty() ? "sym STRING, val INT"
                                             : inline_stream) +
                      ")";
    LintFile("<stream>", ddl, &streams, &counters);
    LintFile("<query>", inline_query, &streams, &counters);
  }

  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    LintFile(file, buffer.str(), &streams, &counters);
  }

  if (!quiet) {
    std::printf("%d quer%s linted, %d error(s), %d warning(s)\n",
                counters.queries, counters.queries == 1 ? "y" : "ies",
                counters.errors, counters.warnings);
  }
  if (counters.errors > 0) return 1;
  if (strict && counters.warnings > 0) return 1;
  return 0;
}
