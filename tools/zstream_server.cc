// zstream_server: the standalone ZStream network server.
//
//   zstream_server [--port N] [--bind ADDR] [--shards N]
//                  [--queue-capacity N] [--drop-policy block|drop]
//                  [--reorder-slack N] [--metrics-port N]
//                  [--slow-event-ms N] [--ddl "STATEMENT"]...
//
// Starts an empty session (optionally seeded with --ddl statements,
// applied in order), binds the sharded runtime, and serves the framed
// protocol until SIGINT/SIGTERM. --port 0 picks an ephemeral port; the
// chosen port is printed on the "listening" line, which scripts parse:
//
//   zstream_server listening on 127.0.0.1:41873 (shards=2, ...)
//
// --metrics-port N opens the HTTP observability side port (GET
// /metrics, /metrics.json, /healthz); 0 picks an ephemeral port. The
// bound port is printed on its own line, which scripts parse:
//
//   zstream_server metrics on http://127.0.0.1:45127/metrics
//
// --slow-event-ms N arms the slow-event log: any single event whose
// evaluation in a plan exceeds the threshold is reported (rate-limited)
// through ZS_LOG(Warn).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/zstream.h"
#include "net/server.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--shards N]\n"
      "          [--queue-capacity N] [--drop-policy block|drop]\n"
      "          [--reorder-slack N] [--metrics-port N]\n"
      "          [--slow-event-ms N] [--ddl \"STATEMENT\"]...\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zstream;

  net::ServerOptions server_options;
  server_options.port = 7979;
  runtime::RuntimeOptions runtime_options;
  runtime_options.num_shards = 2;
  std::vector<std::string> bootstrap_ddl;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--bind") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.bind_address = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.num_shards = std::atoi(v);
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.queue_capacity =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--drop-policy") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "block") == 0) {
        runtime_options.backpressure = runtime::BackpressurePolicy::kBlock;
      } else if (std::strcmp(v, "drop") == 0) {
        runtime_options.backpressure =
            runtime::BackpressurePolicy::kDropNewest;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--reorder-slack") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.reorder_slack = std::atoll(v);
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.metrics_port = std::atoi(v);
    } else if (arg == "--slow-event-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.slow_event_ns = std::atoll(v) * 1000000;
    } else if (arg == "--ddl") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      bootstrap_ddl.push_back(v);
    } else {
      return Usage(argv[0]);
    }
  }

  ZStream session;
  for (const std::string& stmt : bootstrap_ddl) {
    auto result = session.Execute(stmt);
    if (!result.ok()) {
      std::fprintf(stderr, "--ddl failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", result->message.c_str());
  }

  auto server = net::Server::Create(&session, runtime_options,
                                    server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (Status st = (*server)->Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "zstream_server listening on %s:%u (shards=%d, queue=%zu, "
      "backpressure=%s, reorder_slack=%lld)\n",
      (*server)->bind_address().c_str(), (*server)->port(),
      (*server)->runtime().num_shards(), runtime_options.queue_capacity,
      runtime_options.backpressure == runtime::BackpressurePolicy::kBlock
          ? "block"
          : "drop",
      static_cast<long long>(runtime_options.reorder_slack));
  if ((*server)->metrics_port() != 0) {
    std::printf("zstream_server metrics on http://%s:%u/metrics\n",
                (*server)->bind_address().c_str(),
                (*server)->metrics_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  (*server)->Stop();
  return 0;
}
