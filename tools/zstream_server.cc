// zstream_server: the standalone ZStream network server.
//
//   zstream_server [--port N] [--bind ADDR] [--shards N]
//                  [--queue-capacity N] [--drop-policy block|drop]
//                  [--reorder-slack N] [--metrics-port N]
//                  [--slow-event-ms N] [--trace-sample N]
//                  [--trace-ring-mb N] [--trace-dump-dir DIR]
//                  [--ddl "STATEMENT"]...
//
// Starts an empty session (optionally seeded with --ddl statements,
// applied in order), binds the sharded runtime, and serves the framed
// protocol until SIGINT/SIGTERM. --port 0 picks an ephemeral port; the
// chosen port is printed on the "listening" line, which scripts parse:
//
//   zstream_server listening on 127.0.0.1:41873 (shards=2, ...)
//
// --metrics-port N opens the HTTP observability side port (GET
// /metrics, /metrics.json, /healthz); 0 picks an ephemeral port. The
// bound port is printed on its own line, which scripts parse:
//
//   zstream_server metrics on http://127.0.0.1:45127/metrics
//
// --slow-event-ms N arms the slow-event log: any single event whose
// evaluation in a plan exceeds the threshold is reported (rate-limited)
// through ZS_LOG(Warn), tagged with the event's trace id when sampled,
// and triggers a flight-recorder ring snapshot when --trace-dump-dir
// is set.
//
// --trace-sample N arms end-to-end tracing: every Nth ingest batch is
// traced through decode, queueing, evaluation and fanout (1 = every
// batch). The window is served at GET /trace on the metrics port and
// over the kTraceRequest frame (zstream_cli trace). --trace-ring-mb
// bounds the in-memory span window; --trace-dump-dir DIR arms the
// flight recorder (ring snapshots on slow events and fatal signals).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/zstream.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--shards N]\n"
      "          [--queue-capacity N] [--drop-policy block|drop]\n"
      "          [--reorder-slack N] [--metrics-port N]\n"
      "          [--slow-event-ms N] [--trace-sample N]\n"
      "          [--trace-ring-mb N] [--trace-dump-dir DIR]\n"
      "          [--ddl \"STATEMENT\"]...\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zstream;

  net::ServerOptions server_options;
  server_options.port = 7979;
  runtime::RuntimeOptions runtime_options;
  runtime_options.num_shards = 2;
  std::vector<std::string> bootstrap_ddl;
  uint32_t trace_sample = 0;
  size_t trace_ring_mb = 4;
  std::string trace_dump_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--bind") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.bind_address = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.num_shards = std::atoi(v);
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.queue_capacity =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--drop-policy") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "block") == 0) {
        runtime_options.backpressure = runtime::BackpressurePolicy::kBlock;
      } else if (std::strcmp(v, "drop") == 0) {
        runtime_options.backpressure =
            runtime::BackpressurePolicy::kDropNewest;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--reorder-slack") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.reorder_slack = std::atoll(v);
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      server_options.metrics_port = std::atoi(v);
    } else if (arg == "--slow-event-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      runtime_options.slow_event_ns = std::atoll(v) * 1000000;
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      trace_sample = static_cast<uint32_t>(std::atoll(v));
    } else if (arg == "--trace-ring-mb") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      trace_ring_mb = static_cast<size_t>(std::atoll(v));
      if (trace_ring_mb == 0) trace_ring_mb = 1;
    } else if (arg == "--trace-dump-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      trace_dump_dir = v;
    } else if (arg == "--ddl") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      bootstrap_ddl.push_back(v);
    } else {
      return Usage(argv[0]);
    }
  }

  if (trace_sample > 0) {
    obs::TraceOptions topts;
    topts.sample_every = trace_sample;
    // 1 control/net lane + one per shard worker; split the requested
    // window evenly across lanes (64 bytes per span slot).
    topts.num_lanes = static_cast<uint32_t>(
        1 + (runtime_options.num_shards > 0 ? runtime_options.num_shards
                                            : 1));
    topts.ring_slots =
        (trace_ring_mb << 20) / sizeof(obs::Span) / topts.num_lanes;
    obs::Tracer::Global().Configure(topts);
  }
  if (!trace_dump_dir.empty()) {
    obs::FlightRecorder::Global().Configure(trace_dump_dir);
    obs::FlightRecorder::InstallSignalHandler();
  }

  ZStream session;
  for (const std::string& stmt : bootstrap_ddl) {
    auto result = session.Execute(stmt);
    if (!result.ok()) {
      std::fprintf(stderr, "--ddl failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", result->message.c_str());
  }

  auto server = net::Server::Create(&session, runtime_options,
                                    server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (Status st = (*server)->Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "zstream_server listening on %s:%u (shards=%d, queue=%zu, "
      "backpressure=%s, reorder_slack=%lld)\n",
      (*server)->bind_address().c_str(), (*server)->port(),
      (*server)->runtime().num_shards(), runtime_options.queue_capacity,
      runtime_options.backpressure == runtime::BackpressurePolicy::kBlock
          ? "block"
          : "drop",
      static_cast<long long>(runtime_options.reorder_slack));
  if ((*server)->metrics_port() != 0) {
    std::printf("zstream_server metrics on http://%s:%u/metrics\n",
                (*server)->bind_address().c_str(),
                (*server)->metrics_port());
  }
  if (trace_sample > 0) {
    std::printf(
        "zstream_server tracing 1-in-%u batches (ring=%zuMB, dump=%s)\n",
        trace_sample, trace_ring_mb,
        trace_dump_dir.empty() ? "off" : trace_dump_dir.c_str());
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  (*server)->Stop();
  return 0;
}
