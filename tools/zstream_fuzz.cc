// Differential fuzzer: seeded random (pattern, trace) cases through the
// brute-force oracle and every execution path (src/testing/).
//
//   zstream_fuzz --seed 1 --cases 500
//   zstream_fuzz --seed 42 --case-start 17 --cases 1 --verbose
//   zstream_fuzz --seed 7 --paths runtime:4 --cases 200
//   zstream_fuzz --seed $(date +%Y%m%d) --cases 1000000 --max-seconds 300
//
// Every case is fully determined by (--seed, case index, --max-depth,
// --max-classes, --events): a failure prints the one-line repro command
// that re-runs exactly that case, plus the (minimized) trace.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/zstream.h"
#include "query/analyzer.h"
#include "testing/differential.h"
#include "testing/plan_mutator.h"
#include "verify/plan_verifier.h"

namespace {

using zstream::EventPtr;
using zstream::testing::CaseReport;
using zstream::testing::DifferentialDriver;
using zstream::testing::DifferentialOptions;
using zstream::testing::Divergence;
using zstream::testing::GeneratedPattern;
using zstream::testing::GeneratedTrace;
using zstream::testing::PatternGen;
using zstream::testing::PatternGenOptions;
using zstream::testing::TraceGen;
using zstream::testing::TraceGenOptions;

struct Args {
  uint64_t seed = 1;
  int cases = 100;
  int case_start = 0;
  int max_depth = 2;
  int max_classes = 5;
  int events = 64;
  int max_seconds = 0;  // 0: no time limit
  std::string paths;    // csv of {tree,nfa,runtime,net} or one exact path
  bool minimize = true;
  bool verbose = false;
  /// Static modes (no trace execution): --verify-only runs every
  /// strategy's plan through the verifier and fails on any rejection of
  /// a planner-produced plan; --mutate-plans corrupts each plan with a
  /// seeded mutation and fails unless >= 95% of mutants are rejected.
  bool verify_only = false;
  bool mutate_plans = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--cases N] [--case-start N] [--max-depth N]\n"
      "          [--max-classes N] [--events N] [--max-seconds S]\n"
      "          [--paths tree,nfa,runtime,net | --paths <exact-path>]\n"
      "          [--no-minimize] [--verbose] [--verify-only]\n"
      "          [--mutate-plans]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr) return false;
      args->cases = std::atoi(v);
    } else if (arg == "--case-start") {
      const char* v = next();
      if (v == nullptr) return false;
      args->case_start = std::atoi(v);
    } else if (arg == "--max-depth") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_depth = std::atoi(v);
    } else if (arg == "--max-classes") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_classes = std::atoi(v);
    } else if (arg == "--events") {
      const char* v = next();
      if (v == nullptr) return false;
      args->events = std::atoi(v);
    } else if (arg == "--max-seconds") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_seconds = std::atoi(v);
    } else if (arg == "--paths") {
      const char* v = next();
      if (v == nullptr) return false;
      args->paths = v;
    } else if (arg == "--no-minimize") {
      args->minimize = false;
    } else if (arg == "--verify-only") {
      args->verify_only = true;
    } else if (arg == "--mutate-plans") {
      args->mutate_plans = true;
    } else if (arg == "--verbose") {
      args->verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

DifferentialOptions PathOptions(const std::string& spec) {
  DifferentialOptions options;
  if (spec.empty()) return options;
  if (spec.find(':') != std::string::npos ||
      (spec.find(',') == std::string::npos && spec != "tree" &&
       spec != "nfa" && spec != "runtime" && spec != "net")) {
    options.only_path = spec;
    return options;
  }
  options.tree = options.nfa = options.runtime = options.net = false;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    if (part == "tree") options.tree = true;
    if (part == "nfa") options.nfa = true;
    if (part == "runtime") options.runtime = true;
    if (part == "net") options.net = true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return options;
}

// Tallies for the static (no-trace) modes.
struct StaticStats {
  long long plans = 0;    // planner-produced plans verified
  long long mutants = 0;  // corrupted plans fed to the verifier
  long long rejected = 0; // ... of which the verifier refused
  int failures = 0;
};

// Runs one case in --verify-only / --mutate-plans mode: builds the plan
// under every applicable strategy, asserts the verifier accepts each
// (false rejections are bugs), and optionally asserts it refuses a
// seeded corruption of each.
void RunStaticCase(const Args& args, int c, uint64_t case_seed,
                   const GeneratedPattern& pattern, StaticStats* stats) {
  auto analyzed = zstream::AnalyzeQuery(pattern.text, pattern.schema);
  if (!analyzed.ok()) {
    ++stats->failures;
    std::printf("ANALYZE-FAIL case=%d: %s\n  query: %s\n", c,
                analyzed.status().ToString().c_str(), pattern.text.c_str());
    return;
  }
  const zstream::PatternPtr p = *analyzed;

  std::vector<std::pair<std::string, zstream::PlanStrategy>> strategies = {
      {"optimal", zstream::PlanStrategy::kOptimal},
      {"left-deep", zstream::PlanStrategy::kLeftDeep},
      {"right-deep", zstream::PlanStrategy::kRightDeep},
  };
  if (!p->NegatedClasses().empty()) {
    strategies.emplace_back("negation-top",
                            zstream::PlanStrategy::kNegationTop);
  }
  uint64_t salt = 0;
  for (const auto& [name, strategy] : strategies) {
    ++salt;
    zstream::CompileOptions options;
    options.strategy = strategy;
    // BuildPlan typechecks the pattern and verifies the plan itself; a
    // NotSupported outcome is a legitimate capability skip, anything
    // else is a verifier false-rejection (or a broken builder).
    auto plan = zstream::BuildPlan(p, options);
    if (!plan.ok()) {
      if (plan.status().code() == zstream::StatusCode::kNotSupported) {
        continue;
      }
      ++stats->failures;
      std::printf("VERIFY-REJECT case=%d strategy=%s: %s\n  query: %s\n", c,
                  name.c_str(), plan.status().ToString().c_str(),
                  pattern.text.c_str());
      continue;
    }
    ++stats->plans;
    if (!args.mutate_plans) continue;

    auto mutation = zstream::testing::MutatePlan(
        *p, *plan, case_seed ^ (salt * 0xa0761d6478bd642fULL));
    if (!mutation.has_value()) continue;
    ++stats->mutants;
    const zstream::Status verdict =
        zstream::verify::VerifyPlan(mutation->pattern, mutation->plan);
    if (!verdict.ok()) {
      ++stats->rejected;
      if (args.verbose) {
        std::printf("case %d [%s] %s -> %s\n", c, name.c_str(),
                    mutation->description.c_str(),
                    verdict.ToString().c_str());
      }
    } else {
      std::printf("SURVIVING-MUTANT case=%d strategy=%s mutation=%s\n"
                  "  query: %s\n",
                  c, name.c_str(), mutation->description.c_str(),
                  pattern.text.c_str());
    }
  }
}

void DumpTrace(const std::vector<EventPtr>& events) {
  for (const EventPtr& e : events) {
    std::string row = "    @";
    row += std::to_string(e->timestamp());
    for (int f = 0; f < e->schema()->num_fields(); ++f) {
      row += " ";
      row += e->schema()->field(f).name;
      row += "=";
      row += e->value(f).ToString();
    }
    std::printf("%s\n", row.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  const DifferentialOptions path_options = PathOptions(args.paths);
  const DifferentialDriver driver(path_options);

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  int failures = 0;
  int ran = 0;
  long long paths_total = 0;
  long long matches_total = 0;
  StaticStats static_stats;

  for (int c = args.case_start; c < args.case_start + args.cases; ++c) {
    if (args.max_seconds > 0 && elapsed_s() >= args.max_seconds) break;

    // Every case gets its own generators: (seed, index, knobs) fully
    // determine it, independent of which other cases ran.
    const uint64_t case_seed =
        args.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(c);
    PatternGenOptions pg_options;
    pg_options.max_depth = args.max_depth;
    pg_options.max_classes = args.max_classes;
    PatternGen pattern_gen(case_seed, pg_options);
    const GeneratedPattern pattern = pattern_gen.Next();

    if (args.verify_only || args.mutate_plans) {
      ++ran;
      RunStaticCase(args, c, case_seed, pattern, &static_stats);
      if (ran % 500 == 0) {
        std::printf("... %d cases, %lld plans verified, %lld/%lld mutants "
                    "rejected\n",
                    ran, static_stats.plans, static_stats.rejected,
                    static_stats.mutants);
      }
      continue;
    }

    TraceGenOptions tg_options;
    tg_options.num_events = args.events;
    tg_options.window = pattern.window;
    // Vary the disorder profile deterministically across cases.
    switch (c % 4) {
      case 0:
        tg_options.shuffle_span = 0;
        break;
      case 1:
        tg_options.shuffle_span = 2;
        break;
      case 2:
        tg_options.shuffle_span = 0;
        tg_options.p_tie = 0.25;
        break;
      default:
        tg_options.shuffle_span = 5;
        break;
    }
    TraceGen trace_gen(case_seed ^ 0xda3e39cb94b95bdbULL, pattern.schema,
                       tg_options);
    const GeneratedTrace trace = trace_gen.Next();

    const CaseReport report = driver.RunCase(pattern, trace);
    ++ran;
    paths_total += report.paths_run;
    matches_total += static_cast<long long>(report.oracle_matches);

    if (args.verbose) {
      std::printf("case %d: %s paths=%d matches=%zu\n", c,
                  report.ok ? "ok" : "FAIL", report.paths_run,
                  report.oracle_matches);
      std::printf("  query: %s\n", pattern.text.c_str());
    }
    if (report.ok) {
      if (!args.verbose && ran % 100 == 0) {
        std::printf("... %d cases, %lld paths, %lld oracle matches\n", ran,
                    paths_total, matches_total);
      }
      continue;
    }

    ++failures;
    std::printf("DIVERGENCE case=%d\n", c);
    std::printf("  repro: zstream_fuzz --seed %llu --case-start %d "
                "--cases 1 --max-depth %d --max-classes %d --events %d\n",
                static_cast<unsigned long long>(args.seed), c,
                args.max_depth, args.max_classes, args.events);
    std::printf("  query: %s\n", pattern.text.c_str());
    if (!report.error.empty()) {
      std::printf("  error: %s\n", report.error.c_str());
    }
    for (const Divergence& d : report.divergences) {
      std::printf("  path=%s expected=%zu got=%zu %s\n", d.path.c_str(),
                  d.expected, d.got, d.detail.c_str());
    }
    if (args.minimize && !report.divergences.empty()) {
      DifferentialOptions narrow = path_options;
      narrow.only_path = report.divergences[0].path;
      const DifferentialDriver narrowed(narrow);
      const std::vector<EventPtr> minimal =
          narrowed.MinimizeTrace(pattern, trace.events);
      std::printf("  minimized trace (%zu of %zu events):\n",
                  minimal.size(), trace.events.size());
      DumpTrace(minimal);
    }
  }

  if (args.verify_only || args.mutate_plans) {
    failures += static_stats.failures;
    if (args.mutate_plans && static_stats.mutants > 0) {
      const double rate = static_cast<double>(static_stats.rejected) /
                          static_cast<double>(static_stats.mutants);
      std::printf("%d case(s), %lld plans verified, %lld/%lld mutants "
                  "rejected (%.1f%%), %d failure(s) [%.1fs]\n",
                  ran, static_stats.plans, static_stats.rejected,
                  static_stats.mutants, rate * 100.0, failures, elapsed_s());
      // The acceptance bar: a corrupted plan slipping past the verifier
      // more than 1 time in 20 means the invariant set has a hole.
      if (rate < 0.95) return 1;
    } else {
      std::printf("%d case(s), %lld plans verified, %d failure(s) [%.1fs]\n",
                  ran, static_stats.plans, failures, elapsed_s());
    }
    return failures == 0 ? 0 : 1;
  }

  std::printf("%d case(s), %lld path runs, %lld oracle matches, "
              "%d failure(s) [%.1fs]\n",
              ran, paths_total, matches_total, failures, elapsed_s());
  return failures == 0 ? 0 : 1;
}
