# Fail fast, at configure time, on compilers that cannot build the tree.
#
# The codebase is C++20 throughout; the first thing an old compiler trips
# over is `bool operator==(const TimeSpan&) const = default;` in
# src/common/timestamp.h, which under C++17 produces an error cascade
# through every translation unit. Catching it here turns that cascade
# into one actionable message.

set(_zstream_cxx_requirement
  "ZStream requires a C++20 compiler (defaulted comparisons, e.g. \
src/common/timestamp.h): GCC >= 10, Clang >= 10, AppleClang >= 12, or \
MSVC >= 19.28 (VS 2019 16.8).")

if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
  if(CMAKE_CXX_COMPILER_VERSION VERSION_LESS 10)
    message(FATAL_ERROR
      "GCC ${CMAKE_CXX_COMPILER_VERSION} is too old. ${_zstream_cxx_requirement}")
  endif()
elseif(CMAKE_CXX_COMPILER_ID STREQUAL "Clang")
  if(CMAKE_CXX_COMPILER_VERSION VERSION_LESS 10)
    message(FATAL_ERROR
      "Clang ${CMAKE_CXX_COMPILER_VERSION} is too old. ${_zstream_cxx_requirement}")
  endif()
elseif(CMAKE_CXX_COMPILER_ID STREQUAL "AppleClang")
  if(CMAKE_CXX_COMPILER_VERSION VERSION_LESS 12)
    message(FATAL_ERROR
      "AppleClang ${CMAKE_CXX_COMPILER_VERSION} is too old. ${_zstream_cxx_requirement}")
  endif()
elseif(MSVC)
  if(MSVC_VERSION LESS 1928)
    message(FATAL_ERROR
      "MSVC toolset ${MSVC_VERSION} is too old. ${_zstream_cxx_requirement}")
  endif()
else()
  message(WARNING
    "Unrecognized compiler '${CMAKE_CXX_COMPILER_ID}'; the build needs full "
    "C++20 support and may fail. ${_zstream_cxx_requirement}")
endif()

unset(_zstream_cxx_requirement)

# Clang thread-safety analysis (-Wthread-safety). The annotations in
# src/common/sync.h compile away everywhere, but only Clang can check
# them; probe for the flag instead of testing the compiler id so the
# gate follows the toolchain, not our guess about it. The result is
# exported so tests/CMakeLists.txt can register the compile-fail
# harness only where the analysis actually runs.
include(CheckCXXCompilerFlag)
check_cxx_compiler_flag(-Wthread-safety ZSTREAM_HAVE_WTHREAD_SAFETY)

# Translates the ZSTREAM_SANITIZE cache value into compile/link flags on
# `target`:
#   OFF            -- nothing
#   ON / address   -- AddressSanitizer + UndefinedBehaviorSanitizer
#   thread         -- ThreadSanitizer (the CI job for src/runtime/ and the
#                     concurrent engine paths)
# ASan and TSan cannot be combined, hence the single selector.
function(zstream_apply_sanitizers target)
  if(NOT ZSTREAM_SANITIZE OR ZSTREAM_SANITIZE STREQUAL "OFF")
    return()
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "ZSTREAM_SANITIZE requires GCC or Clang")
  endif()
  if(ZSTREAM_SANITIZE STREQUAL "thread")
    set(_zs_san_flags
      -fsanitize=thread -fno-omit-frame-pointer -fno-sanitize-recover=all)
  elseif(ZSTREAM_SANITIZE STREQUAL "ON" OR ZSTREAM_SANITIZE STREQUAL "address")
    set(_zs_san_flags
      -fsanitize=address,undefined -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
  else()
    message(FATAL_ERROR
      "Unknown ZSTREAM_SANITIZE value '${ZSTREAM_SANITIZE}' "
      "(expected OFF, ON, address, or thread)")
  endif()
  # GCC's -Wmaybe-uninitialized is unreliable once sanitizer
  # instrumentation reshapes the CFG: at -O2 it flags fully-initialized
  # std::variant temporaries (PR80635 family, seen on Value's variant
  # rep). The warning stays on in every non-sanitizer build.
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    list(APPEND _zs_san_flags -Wno-maybe-uninitialized)
  endif()
  target_compile_options(${target} INTERFACE ${_zs_san_flags})
  target_link_options(${target} INTERFACE ${_zs_san_flags})
endfunction()
