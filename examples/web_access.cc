// Web-access pattern detection (Section 6.5): find visitors who
// download a publication, then browse a project page, then a course
// page from the same IP within 10 hours (the paper's Query 8), on a
// synthetic month of logs matching Table 4's class cardinalities.
#include <cstdio>

#include <map>

#include "api/zstream.h"
#include "workload/weblog_gen.h"

using namespace zstream;

int main() {
  WebLogGenOptions gen;
  gen.total_records = 300000;  // a ~6-day slice keeps the demo snappy
  gen.publication_accesses = 1355;
  gen.project_accesses = 2322;
  gen.course_accesses = 3216;
  gen.num_ips = 1500;
  WebLogStats stats;
  const auto log = GenerateWebLog(gen, &stats);
  std::printf("log: %zu records, %lld publications, %lld projects, "
              "%lld courses\n",
              log.size(), static_cast<long long>(stats.publications),
              static_cast<long long>(stats.projects),
              static_cast<long long>(stats.courses));

  ZStream zs(WebLogSchema());
  auto query = zs.Compile(
      "PATTERN Pub;Proj;Course "
      "WHERE Pub.category='publication' AND Proj.category='project' "
      "AND Course.category='course' "
      "AND Pub.ip = Proj.ip = Course.ip "
      "WITHIN 10 hours "
      "RETURN Pub.ip");
  if (!query.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", (*query)->Explain().c_str());

  // Count research-minded visitors by IP.
  std::map<std::string, int> by_ip;
  (*query)->SetMatchCallback([&](Match&& m) {
    const std::vector<Value> row = ProjectMatch((*query)->pattern(), m);
    ++by_ip[row[0].string_value()];
  });

  for (const EventPtr& e : log) (*query)->Push(e);
  (*query)->Finish();

  std::printf("\n%llu publication->project->course sessions from %zu "
              "distinct IPs\n",
              static_cast<unsigned long long>((*query)->num_matches()),
              by_ip.size());
  std::printf("top visitors:\n");
  std::vector<std::pair<int, std::string>> top;
  for (const auto& [ip, n] : by_ip) top.emplace_back(n, ip);
  std::sort(top.rbegin(), top.rend());
  for (size_t i = 0; i < top.size() && i < 5; ++i) {
    std::printf("  %-16s %d sessions\n", top[i].second.c_str(),
                top[i].first);
  }
  return 0;
}
