// Plan adaptation live (Section 5.3): stream statistics flip mid-run —
// the IBM class goes from rare to common while Oracle becomes rare —
// and the engine re-plans on the fly. The demo prints the plan before
// and after, and per-phase processing rates.
#include <chrono>
#include <cstdio>

#include "api/zstream.h"
#include "workload/stock_gen.h"

using namespace zstream;

namespace {

std::vector<EventPtr> Phase(const std::string& ratio, int n, Timestamp base,
                            uint64_t seed) {
  StockGenOptions gen;
  gen.names = {"IBM", "Sun", "Oracle"};
  gen.weights = ParseRateRatio(ratio);
  gen.num_events = n;
  gen.start_ts = base;
  gen.seed = seed;
  return GenerateStockTrades(gen);
}

}  // namespace

int main() {
  ZStream zs(StockSchema());
  CompileOptions options;
  options.engine.adaptive = true;
  options.engine.adaptive_options.drift_threshold = 0.4;
  options.engine.adaptive_options.improvement_threshold = 0.05;
  options.engine.adaptive_options.check_every_rounds = 8;
  // Seed the planner with phase-1 statistics: IBM rare.
  StatsCatalog initial(3, 200.0);
  initial.set_rate(0, 0.01);
  initial.set_rate(1, 0.5);
  initial.set_rate(2, 0.5);
  options.stats = initial;

  auto query = zs.Compile(
      "PATTERN IBM;Sun;Oracle "
      "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
      "WITHIN 200",
      options);
  if (!query.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  Query* q = query->get();
  std::printf("initial plan (IBM rare):   %s\n", q->CurrentPlan().c_str());

  const int kPerPhase = 60000;
  const auto phase1 = Phase("1:50:50", kPerPhase, 0, 1);
  const auto phase2 = Phase("50:50:1", kPerPhase, kPerPhase, 2);

  const auto run_phase = [&](const std::vector<EventPtr>& events,
                             const char* label) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const EventPtr& e : events) q->Push(e);
    const auto t1 = std::chrono::steady_clock::now();
    const double eps = static_cast<double>(events.size()) /
                       std::chrono::duration<double>(t1 - t0).count();
    std::printf("%s: %.0f events/s, plan now: %s\n", label, eps,
                q->CurrentPlan().c_str());
  };

  run_phase(phase1, "phase 1 (IBM rare)  ");
  run_phase(phase2, "phase 2 (Oracle rare)");
  q->Finish();

  std::printf("\nplan switches: %llu, matches: %llu\n",
              static_cast<unsigned long long>(q->plan_switches()),
              static_cast<unsigned long long>(q->num_matches()));
  if (q->plan_switches() == 0) {
    std::printf("(no switch happened — try longer phases)\n");
  }
  return 0;
}
