// Two named streams with distinct schemas in one session — the
// catalog/DDL tour from the README: a stock feed and a web-access log,
// each with its own registered query, pushed interleaved through the
// same ZStream.
//
//   $ ./two_streams
#include <cstdio>

#include "api/zstream.h"
#include "workload/stock_gen.h"
#include "workload/weblog_gen.h"

using namespace zstream;

namespace {

Query* MustExecute(ZStream& zs, const char* ddl) {
  auto result = zs.Execute(ddl);
  if (!result.ok()) {
    std::fprintf(stderr, "DDL failed: %s\n  in: %s\n",
                 result.status().ToString().c_str(), ddl);
    std::exit(1);
  }
  return result->query;
}

}  // namespace

int main() {
  ZStream zs;

  // Two streams, two schemas — registered from the SchemaPtrs the
  // workload generators lay their events out with, so field order is
  // right by construction. (DDL works too — `CREATE STREAM stock (id
  // INT, name STRING, ...)` — when you also build the events from the
  // catalog's schema, as quickstart.cc does.)
  if (!zs.catalog().CreateStream("stock", StockSchema()).ok() ||
      !zs.catalog().CreateStream("weblog", WebLogSchema()).ok()) {
    std::fprintf(stderr, "stream registration failed\n");
    return 1;
  }

  // One query per stream: a same-name price rise on the stock feed, and
  // the paper's Query 8 session pattern on the web log.
  Query* rise = MustExecute(
      zs,
      "CREATE QUERY rise ON stock AS "
      "PATTERN A;B WHERE A.name = B.name AND B.price > A.price * 1.1 "
      "WITHIN 100");
  Query* sessions = MustExecute(
      zs,
      "CREATE QUERY sessions ON weblog AS "
      "PATTERN Pub;Proj;Course "
      "WHERE Pub.category='publication' AND Proj.category='project' "
      "AND Course.category='course' "
      "AND Pub.ip = Proj.ip = Course.ip "
      "WITHIN 10 hours RETURN Pub.ip");

  std::printf("catalog:\n%s\n", zs.Execute("SHOW STREAMS")->message.c_str());
  std::printf("rise:     %s\nsessions: %s\n\n", rise->Explain().c_str(),
              sessions->Explain().c_str());

  // Generate both workloads and push each into its own stream's query.
  StockGenOptions stock_gen;
  stock_gen.num_events = 50000;
  const auto ticks = GenerateStockTrades(stock_gen);
  for (const EventPtr& e : ticks) rise->Push(e);
  rise->Finish();

  WebLogGenOptions web_gen;
  web_gen.total_records = 100000;
  web_gen.publication_accesses = 2000;
  web_gen.project_accesses = 3000;
  web_gen.course_accesses = 4000;
  web_gen.num_ips = 50;
  const auto log = GenerateWebLog(web_gen);
  for (const EventPtr& e : log) sessions->Push(e);
  sessions->Finish();

  std::printf("stock ticks: %zu -> %llu same-name 10%%-rise pairs\n",
              ticks.size(),
              static_cast<unsigned long long>(rise->num_matches()));
  std::printf("web records: %zu -> %llu pub->proj->course sessions\n",
              log.size(),
              static_cast<unsigned long long>(sessions->num_matches()));
  return rise->num_matches() > 0 && sessions->num_matches() > 0 ? 0 : 1;
}
