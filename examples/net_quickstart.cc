// Serving ZStream over TCP: start a net::Server in-process, drive it
// with the blocking net::Client — CREATE STREAM / CREATE QUERY over the
// wire, subscribe to matches, ingest a typed event batch, flush, and
// read the match notifications back. The same flow works across
// machines with the standalone `zstream_server` / `zstream_cli`
// binaries (see README "Running the server").
//
//   ./net_quickstart
#include <cstdio>

#include "api/zstream.h"
#include "net/client.h"
#include "net/server.h"

int main() {
  using namespace zstream;

  // An empty session; the client will populate the catalog over the
  // wire. ServerOptions{} binds 127.0.0.1 on an ephemeral port.
  ZStream session;
  runtime::RuntimeOptions runtime_options;
  runtime_options.num_shards = 2;
  auto server = net::Server::Create(&session, runtime_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (Status st = (*server)->Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("server on 127.0.0.1:%u\n", (*server)->port());

  auto client = net::Client::Connect("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  // DDL over the wire: a stream and a rising-pair query on it.
  for (const char* stmt :
       {"CREATE STREAM ticks (name STRING, price DOUBLE)",
        "CREATE QUERY rising ON ticks AS "
        "PATTERN A;B WHERE A.name = B.name AND A.price < B.price "
        "WITHIN 10"}) {
    auto reply = (*client)->Execute(stmt);
    if (!reply.ok()) {
      std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", reply->message.c_str());
  }
  auto plan = (*client)->Execute("SHOW PLAN rising");
  if (plan.ok()) std::printf("%s\n", plan->message.c_str());

  // Subscribe before ingesting so every match is delivered.
  if (auto sub = (*client)->Subscribe("rising"); !sub.ok()) {
    std::fprintf(stderr, "%s\n", sub.status().ToString().c_str());
    return 1;
  }

  const SchemaPtr schema =
      session.catalog().stream("ticks").ValueOr(nullptr);
  std::vector<EventPtr> events;
  const double prices[] = {10, 12, 11, 14, 9, 15};
  for (int i = 0; i < 6; ++i) {
    events.push_back(EventBuilder(schema)
                         .Set("name", "IBM")
                         .Set("price", prices[i])
                         .At(i)
                         .Build());
  }
  auto ack = (*client)->Ingest("ticks", events);
  if (!ack.ok()) {
    std::fprintf(stderr, "%s\n", ack.status().ToString().c_str());
    return 1;
  }

  // Barrier: all matches for the batch are queued locally after this.
  auto flush = (*client)->Flush();
  if (!flush.ok()) {
    std::fprintf(stderr, "%s\n", flush.status().ToString().c_str());
    return 1;
  }
  uint64_t expected = 0;
  for (const auto& [name, matches] : flush->queries) {
    std::printf("query %s matches=%llu\n", name.c_str(),
                static_cast<unsigned long long>(matches));
    expected += matches;
  }
  auto got = (*client)->WaitForMatches(expected, /*timeout_ms=*/5000);
  if (!got.ok()) {
    std::fprintf(stderr, "%s\n", got.status().ToString().c_str());
    return 1;
  }
  for (const net::NetMatch& m : (*client)->TakeMatches()) {
    std::printf("  %s\n", m.match.ToString().c_str());
  }
  if (*got != expected) {
    std::fprintf(stderr, "expected %llu match frames, got %zu\n",
                 static_cast<unsigned long long>(expected), *got);
    return 1;
  }
  std::printf("received all %llu matches over the wire\n",
              static_cast<unsigned long long>(expected));
  (*server)->Stop();
  return 0;
}
