// Multi-core, multi-query serving with runtime::StreamRuntime.
//
// Starts a 4-shard runtime over the stock schema, registers two queries
// (a hash-partitioned rising-triple per symbol, and a keyless IBM/Sun
// spread pinned to one shard), replays a synthetic trading day from two
// key-partitioned producer threads, and prints per-query match counts
// plus the runtime's JSON metrics.
//
//   ./runtime_server [num_events]   (default 50000)
#include <cstdio>
#include <cstdlib>

#include "api/zstream.h"
#include "runtime/stream_runtime.h"
#include "workload/driver.h"
#include "workload/stock_gen.h"

int main(int argc, char** argv) {
  using namespace zstream;

  int64_t num_events = 50000;
  if (argc > 1) num_events = std::atoll(argv[1]);

  // A 4-shard runtime bound to the stock schema ("default" stream).
  ZStream zs(StockSchema());
  runtime::RuntimeOptions options;
  options.num_shards = 4;
  auto rt = zs.StartRuntime(options);
  if (!rt.ok()) {
    std::fprintf(stderr, "%s\n", rt.status().ToString().c_str());
    return 1;
  }
  const auto stream = (*rt)->stream("default");

  // Query 1: three same-symbol trades with rising prices. The analyzer
  // finds the symbol partition key, so the runtime shards it by hash —
  // all four cores work on it.
  runtime::CollectingMatchSink rising_sink;
  runtime::QueryOptions rising_opts;
  rising_opts.sink = &rising_sink;
  auto rising = (*rt)->RegisterQuery(
      *stream,
      "PATTERN A;B;C WHERE A.name = B.name AND B.name = C.name "
      "AND A.price < B.price AND B.price < C.price WITHIN 100",
      {}, rising_opts);
  if (!rising.ok()) {
    std::fprintf(stderr, "%s\n", rising.status().ToString().c_str());
    return 1;
  }

  // Query 2: keyless cross-symbol spread; pinned to one shard. The
  // producers below preserve order only *per symbol*, so this
  // cross-symbol query needs the Section-4.1 reorder stage to absorb
  // inter-producer skew (without it, late events are dropped).
  CompileOptions spread_compile;
  spread_compile.engine.reorder_slack = 5000;
  auto spread = (*rt)->RegisterQuery(
      *stream,
      "PATTERN IBM;Sun WHERE IBM.name = 'SYM0' AND Sun.name = 'SYM1' "
      "AND IBM.price > Sun.price + 40 WITHIN 20",
      spread_compile);
  if (!spread.ok()) {
    std::fprintf(stderr, "%s\n", spread.status().ToString().c_str());
    return 1;
  }

  // One trading day over 16 symbols, replayed by two producer threads
  // that split the symbols between them (per-key order preserved).
  StockGenOptions gen;
  gen.names.clear();
  gen.weights.clear();
  for (int i = 0; i < 16; ++i) {
    gen.names.push_back("SYM" + std::to_string(i));
    gen.weights.push_back(1.0);
  }
  gen.num_events = num_events;
  const auto events = GenerateStockTrades(gen);

  ConcurrentDriveOptions drive;
  drive.num_producers = 2;
  drive.partition_field = StockSchema()->FieldIndex("name");
  runtime::StreamRuntime* raw = rt->get();
  const runtime::StreamId sid = *stream;
  const auto replay = DriveConcurrently(
      events, drive,
      [raw, sid](const EventPtr& e) { return raw->Ingest(sid, e); });
  if (!(*rt)->Flush().ok()) return 1;

  const auto rising_matches = (*rt)->query_matches(*rising);
  const auto spread_matches = (*rt)->query_matches(*spread);
  std::printf("replayed %lld events from %d producers in %.3fs\n",
              static_cast<long long>(num_events), drive.num_producers,
              replay.elapsed_s);
  std::printf("rising-triple matches (sharded by symbol): %llu\n",
              static_cast<unsigned long long>(
                  rising_matches.ok() ? *rising_matches : 0));
  std::printf("spread matches (pinned):                   %llu\n",
              static_cast<unsigned long long>(
                  spread_matches.ok() ? *spread_matches : 0));
  std::printf("runtime metrics: %s\n", (*rt)->Stats().ToJson().c_str());

  // Sanity for the smoke test: the sink saw what the counter counted.
  if (rising_matches.ok() && rising_sink.size() != *rising_matches) {
    std::fprintf(stderr, "sink/counter mismatch\n");
    return 1;
  }
  return 0;
}
