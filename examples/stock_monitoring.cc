// Stock-market monitoring: the paper's three motivating queries
// (Section 3.2) running against a synthetic feed.
//
//   Query 1  — sequence: a stock rises 5% above the following Google
//              tick, then falls 2% below it, same name both times.
//   Query 2  — negation: price above 50, no dip below 50 in between,
//              then above 60 (per stock name, hash-partitioned).
//   Query 3  — Kleene closure: five successive Google trades whose
//              total volume tops a threshold, bracketed by same-name
//              ticks with a 20% rise.
#include <cstdio>
#include <cstdlib>

#include "api/zstream.h"
#include "workload/stock_gen.h"

using namespace zstream;

namespace {

std::unique_ptr<Query> Compile(const ZStream& zs, const char* label,
                               const std::string& text) {
  auto query = zs.Compile(text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s failed to compile: %s\n", label,
                 query.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s plan: %s\n", label, (*query)->Explain().c_str());
  return std::move(*query);
}

}  // namespace

// An optional argv[1] overrides the feed size (default: one 200k-event
// trading day); the CTest smoke registration passes a small count so
// sanitizer builds finish well inside the test timeout.
int main(int argc, char** argv) {
  int num_events = 200000;
  if (argc > 1) num_events = std::max(1, std::atoi(argv[1]));

  ZStream zs(StockSchema());

  auto query1 = Compile(zs, "Query 1",
                        "PATTERN T1;T2;T3 "
                        "WHERE T1.name = T3.name AND T2.name = 'Google' "
                        "AND T1.price > (1 + 5%) * T2.price "
                        "AND T3.price < (1 - 2%) * T2.price "
                        "WITHIN 10 secs "
                        "RETURN T1, T2, T3");

  auto query2 = Compile(zs, "Query 2",
                        "PATTERN T1;!T2;T3 "
                        "WHERE T1.name = T2.name = T3.name "
                        "AND T1.price > 50 AND T2.price < 50 "
                        "AND T3.price > 50 * (1 + 20%) "
                        "WITHIN 10 secs "
                        "RETURN T1, T3");

  auto query3 = Compile(zs, "Query 3",
                        "PATTERN T1;T2^5;T3 "
                        "WHERE T1.name = T3.name AND T2.name = 'Google' "
                        "AND sum(T2.volume) > 2000 "
                        "AND T3.price > (1 + 20%) * T1.price "
                        "WITHIN 10 secs "
                        "RETURN T1, sum(T2.volume), T3");

  // One synthetic trading day: Google plus four other symbols, prices
  // in [40, 120), one tick every 100 ms.
  StockGenOptions gen;
  gen.names = {"Google", "IBM", "Sun", "Oracle", "HP"};
  gen.weights = {3, 1, 1, 1, 1};
  gen.num_events = num_events;
  gen.ts_step = 100;  // ms
  gen.price_min = 40;
  gen.price_max = 120;
  gen.seed = 2009;
  const auto feed = GenerateStockTrades(gen);

  for (const EventPtr& e : feed) {
    query1->Push(e);
    query2->Push(e);
    query3->Push(e);
  }
  query1->Finish();
  query2->Finish();
  query3->Finish();

  std::printf("\nprocessed %zu ticks\n", feed.size());
  std::printf("Query 1 (rise-then-fall around Google): %llu matches\n",
              static_cast<unsigned long long>(query1->num_matches()));
  std::printf("Query 2 (no-dip breakout, partitioned by name): %llu "
              "matches across partitions\n",
              static_cast<unsigned long long>(query2->num_matches()));
  std::printf("Query 3 (5-trade Google volume burst): %llu matches\n",
              static_cast<unsigned long long>(query3->num_matches()));
  return 0;
}
