// Quickstart: compile a sequential pattern, stream a handful of stock
// ticks through it, print the matches.
//
//   $ ./quickstart
//
// The query is the paper's Query 4 shape: an IBM tick followed by a Sun
// tick followed by an Oracle tick within the window, with a predicate
// between the first two.
#include <cstdio>

#include "api/zstream.h"

int main() {
  using namespace zstream;

  // 1. Bind ZStream to the input stream's schema.
  ZStream zs(StockSchema());

  // 2. Compile a query. The cost-based planner picks the tree shape.
  auto query = zs.Compile(
      "PATTERN IBM;Sun;Oracle "
      "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
      "AND IBM.price > Sun.price "
      "WITHIN 10 "
      "RETURN IBM.price, Sun.price, Oracle.price");
  if (!query.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n\n", (*query)->Explain().c_str());

  // 3. Receive matches through a callback.
  (*query)->SetMatchCallback([&](Match&& m) {
    const std::vector<Value> row = ProjectMatch((*query)->pattern(), m);
    std::printf("match [%lld, %lld]: IBM=%.0f Sun=%.0f Oracle=%.0f\n",
                static_cast<long long>(m.span.start),
                static_cast<long long>(m.span.end), row[0].AsDouble(),
                row[1].AsDouble(), row[2].AsDouble());
  });

  // 4. Push events (ticker, price, timestamp).
  const auto tick = [&](const char* name, double price, Timestamp ts) {
    (*query)->Push(EventBuilder(StockSchema())
                       .Set("name", name)
                       .Set("price", price)
                       .Set("ts", static_cast<int64_t>(ts))
                       .At(ts)
                       .Build());
  };
  tick("IBM", 95, 1);
  tick("Sun", 80, 2);      // IBM@95 > Sun@80: predicate holds
  tick("Google", 500, 3);  // irrelevant to every class
  tick("Oracle", 30, 4);   // completes the pattern
  tick("IBM", 70, 5);
  tick("Sun", 90, 6);      // 70 > 90 fails: no match through here
  tick("Oracle", 31, 7);
  (*query)->Finish();

  std::printf("\ntotal matches: %llu\n",
              static_cast<unsigned long long>((*query)->num_matches()));
  return 0;
}
