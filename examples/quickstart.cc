// Quickstart for the catalog-centric API: declare a named stream with
// DDL, register one query from DDL text and an equivalent one from the
// typed PatternBuilder, stream a handful of stock ticks through both,
// print the matches.
//
//   $ ./quickstart
//
// The query is the paper's Query 4 shape: an IBM tick followed by a Sun
// tick followed by an Oracle tick within the window, with a predicate
// between the first two.
#include <cstdio>

#include "api/zstream.h"

int main() {
  using namespace zstream;

  // 1. A session owns a catalog of named streams. Declare one via DDL.
  ZStream zs;
  auto created = zs.Execute(
      "CREATE STREAM stock "
      "(id INT, name STRING, price DOUBLE, volume INT, ts INT)");
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }

  // 2a. Register a named query with DDL. The cost-based planner picks
  //     the tree shape; errors carry codes and line:column coordinates.
  auto ddl = zs.Execute(
      "CREATE QUERY rally ON stock AS "
      "PATTERN IBM;Sun;Oracle "
      "WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle' "
      "AND IBM.price > Sun.price "
      "WITHIN 10 "
      "RETURN IBM.price, Sun.price, Oracle.price");
  if (!ddl.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 ddl.status().ToString().c_str());
    return 1;
  }
  Query* rally = ddl->query;
  std::printf("rally:   %s\n", rally->Explain().c_str());

  // 2b. The same query, built fluently — identical plan and matches,
  //     and ToQueryString() round-trips to the text form.
  PatternBuilder spec = PatternBuilder(Seq("IBM", "Sun", "Oracle"))
                            .On("stock")
                            .Where(Attr("IBM", "name") == "IBM")
                            .Where(Attr("Sun", "name") == "Sun")
                            .Where(Attr("Oracle", "name") == "Oracle")
                            .Where(Attr("IBM", "price") > Attr("Sun", "price"))
                            .Within(10)
                            .Return(Attr("IBM", "price"))
                            .Return(Attr("Sun", "price"))
                            .Return(Attr("Oracle", "price"));
  auto built = zs.Compile(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "builder compile failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("builder: %s\n", (*built)->Explain().c_str());
  std::printf("round-trip: %s\n\n", spec.ToQueryString().c_str());

  // 3. Receive matches through a callback.
  rally->SetMatchCallback([&](Match&& m) {
    const std::vector<Value> row = ProjectMatch(rally->pattern(), m);
    std::printf("match [%lld, %lld]: IBM=%.0f Sun=%.0f Oracle=%.0f\n",
                static_cast<long long>(m.span.start),
                static_cast<long long>(m.span.end), row[0].AsDouble(),
                row[1].AsDouble(), row[2].AsDouble());
  });

  // 4. Push events (ticker, price, timestamp) to both handles.
  const SchemaPtr schema = *zs.catalog().stream("stock");
  const auto tick = [&](const char* name, double price, Timestamp ts) {
    const EventPtr e = EventBuilder(schema)
                           .Set("name", name)
                           .Set("price", price)
                           .Set("ts", static_cast<int64_t>(ts))
                           .At(ts)
                           .Build();
    rally->Push(e);
    (*built)->Push(e);
  };
  tick("IBM", 95, 1);
  tick("Sun", 80, 2);      // IBM@95 > Sun@80: predicate holds
  tick("Google", 500, 3);  // irrelevant to every class
  tick("Oracle", 30, 4);   // completes the pattern
  tick("IBM", 70, 5);
  tick("Sun", 90, 6);      // 70 > 90 fails: no match through here
  tick("Oracle", 31, 7);
  rally->Finish();
  (*built)->Finish();

  std::printf("\nSHOW QUERIES:\n%s", zs.Execute("SHOW QUERIES")->message.c_str());
  std::printf("\nrally matches: %llu, builder matches: %llu\n",
              static_cast<unsigned long long>(rally->num_matches()),
              static_cast<unsigned long long>((*built)->num_matches()));
  return rally->num_matches() == (*built)->num_matches() ? 0 : 1;
}
